package benefit

import (
	"testing"
	"time"

	"hinfs/internal/cacheline"
	"hinfs/internal/clock"
)

func model(t *testing.T) (*Model, *clock.Fake) {
	t.Helper()
	fk := clock.NewFake(time.Unix(100, 0))
	return NewModel(fk, Config{GhostBlocks: 8}), fk
}

func TestNewBlocksStartLazy(t *testing.T) {
	m, fk := model(t)
	if m.IsEager(1, 0, fk.Now()) {
		t.Fatal("untracked block eager")
	}
	m.RecordWrite(1, 0, cacheline.Full)
	if m.IsEager(1, 0, fk.Now()) {
		t.Fatal("freshly written block eager before any sync")
	}
}

func TestSyncEveryWriteTurnsEager(t *testing.T) {
	m, fk := model(t)
	// N_cw == N_cf: 64 writes, all 64 flushed at sync → inequality fails.
	m.RecordWrite(1, 0, cacheline.Full)
	m.OnSync(1)
	if !m.IsEager(1, 0, fk.Now()) {
		t.Fatal("sync-every-write block not eager")
	}
}

func TestCoalescedWritesStayLazy(t *testing.T) {
	m, fk := model(t)
	// Many overwrites of the same line between syncs: N_cw = 100, N_cf = 1.
	for i := 0; i < 100; i++ {
		m.RecordWrite(1, 0, cacheline.RangeMask(0, 64))
	}
	m.OnSync(1)
	if m.IsEager(1, 0, fk.Now()) {
		t.Fatal("highly coalesced block marked eager")
	}
}

func TestInequalityBoundary(t *testing.T) {
	// With L_dram=25, L_nvmm=200: buffering wins iff 25·Ncw + 200·Ncf <
	// 200·Ncw, i.e. Ncf < 0.875·Ncw.
	// Each case writes the same ncf-line mask `writes` times, so
	// N_cw = writes·ncf and N_cf = ncf at sync.
	cases := []struct {
		ncf, writes int
		eager       bool
	}{
		{64, 1, true},   // 64·25+64·200 !< 64·200
		{1, 1, true},    // 25+200 !< 200
		{1, 100, false}, // 2500+200 < 20000
		{4, 2, false},   // 200+800 < 1600
		{8, 1, true},    // one-shot full-flush block
	}
	for _, c := range cases {
		fk := clock.NewFake(time.Unix(0, 0))
		m := NewModel(fk, Config{GhostBlocks: 8})
		mask := cacheline.RangeMask(0, c.ncf*cacheline.Size)
		for i := 0; i < c.writes; i++ {
			m.RecordWrite(1, 0, mask)
		}
		m.OnSync(1)
		if got := m.IsEager(1, 0, fk.Now()); got != c.eager {
			t.Errorf("ncf=%d writes=%d: eager=%v, want %v", c.ncf, c.writes, got, c.eager)
		}
	}
}

func TestEagerDecay(t *testing.T) {
	m, fk := model(t)
	m.RecordWrite(1, 0, cacheline.Full)
	m.OnSync(1)
	lastSync := fk.Now()
	if !m.IsEager(1, 0, lastSync) {
		t.Fatal("precondition")
	}
	fk.Advance(6 * time.Second)
	if m.IsEager(1, 0, lastSync) {
		t.Fatal("no decay after 6 s quiet period")
	}
}

func TestAccuracyMetric(t *testing.T) {
	m, _ := model(t)
	// Three identical sync rounds → after the first, each subsequent one
	// is an accurate prediction.
	for i := 0; i < 3; i++ {
		m.RecordWrite(1, 0, cacheline.Full)
		m.OnSync(1)
	}
	acc, total := m.Accuracy()
	if total != 2 || acc != 2 {
		t.Fatalf("accuracy %d/%d, want 2/2", acc, total)
	}
	// Now flip behaviour: heavy coalescing → decision changes → inaccurate.
	for i := 0; i < 64*8; i++ {
		m.RecordWrite(1, 0, cacheline.RangeMask(0, 64))
	}
	m.OnSync(1)
	acc, total = m.Accuracy()
	if total != 3 || acc != 2 {
		t.Fatalf("accuracy %d/%d, want 2/3", acc, total)
	}
}

func TestGhostBufferBounded(t *testing.T) {
	m, _ := model(t)
	for i := int64(0); i < 100; i++ {
		m.RecordWrite(1, i, cacheline.Full)
	}
	if got := m.GhostLen(); got > 8 {
		t.Fatalf("ghost holds %d entries, cap 8", got)
	}
}

func TestGhostEvictionExcludesFromNcf(t *testing.T) {
	m, fk := model(t)
	// Write block 0, then 8 more blocks to evict it from the ghost.
	m.RecordWrite(1, 0, cacheline.Full)
	for i := int64(1); i <= 8; i++ {
		m.RecordWrite(1, i, cacheline.RangeMask(0, 64))
	}
	// At sync, block 0's ghost entry is gone → N_cf = 0 → buffering wins
	// despite N_cw == flush-everything behaviour.
	m.OnSync(1)
	if m.IsEager(1, 0, fk.Now()) {
		t.Fatal("ghost-evicted block counted background flushes as N_cf")
	}
}

func TestMarkEagerAndDropFile(t *testing.T) {
	m, fk := model(t)
	m.MarkEager(7, []int64{0, 1, 2})
	for i := int64(0); i < 3; i++ {
		if !m.IsEager(7, i, fk.Now()) {
			t.Fatalf("block %d not eager after MarkEager", i)
		}
	}
	m.DropFile(7)
	if m.IsEager(7, 0, fk.Now()) {
		t.Fatal("state survives DropFile")
	}
	if m.GhostLen() != 0 {
		t.Fatal("ghost entries survive DropFile")
	}
}

func TestPerBlockIndependence(t *testing.T) {
	m, fk := model(t)
	m.RecordWrite(1, 0, cacheline.Full) // sync-heavy block
	for i := 0; i < 100; i++ {
		m.RecordWrite(1, 1, cacheline.RangeMask(0, 64)) // coalesced block
	}
	m.OnSync(1)
	if !m.IsEager(1, 0, fk.Now()) {
		t.Fatal("block 0 should be eager")
	}
	if m.IsEager(1, 1, fk.Now()) {
		t.Fatal("block 1 should stay lazy")
	}
}

func TestDefaults(t *testing.T) {
	m := NewModel(clock.Real{}, Config{})
	c := m.Config()
	if c.DRAMWriteLatency != 25*time.Nanosecond || c.NVMMWriteLatency != 200*time.Nanosecond {
		t.Fatalf("latency defaults: %+v", c)
	}
	if c.EagerDecay != 5*time.Second || c.GhostBlocks != 4096 {
		t.Fatalf("policy defaults: %+v", c)
	}
}
