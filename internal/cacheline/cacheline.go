// Package cacheline provides cacheline-granularity primitives used by the
// HiNFS DRAM write buffer and the direct-read path.
//
// HiNFS manages its 4 KB DRAM buffer blocks at the granularity of processor
// cachelines (64 B). Each block therefore carries a 64-bit Bitmap in which
// bit P set means "cacheline P of this block holds data" (valid bitmap) or
// "cacheline P is dirty" (dirty bitmap), depending on use. The Cacheline
// Level Fetch/Writeback scheme (CLFW, paper §3.2.1) and the read-consistency
// merge (paper §3.3.1) both iterate runs of consecutive equal bits so that a
// single memcpy covers each run.
package cacheline

import "math/bits"

const (
	// Size is the size of one processor cacheline in bytes.
	Size = 64
	// BlockSize is the file-system block size in bytes.
	BlockSize = 4096
	// PerBlock is the number of cachelines in one block.
	PerBlock = BlockSize / Size
)

// Bitmap tracks one bit per cacheline of a 4 KB block. The zero value has
// no bits set.
type Bitmap uint64

// Full is a bitmap with every cacheline bit set.
const Full Bitmap = ^Bitmap(0)

// Set sets the bit for cacheline i.
func (b *Bitmap) Set(i int) { *b |= 1 << uint(i) }

// Clear clears the bit for cacheline i.
func (b *Bitmap) Clear(i int) { *b &^= 1 << uint(i) }

// Test reports whether the bit for cacheline i is set.
func (b Bitmap) Test(i int) bool { return b&(1<<uint(i)) != 0 }

// Count returns the number of set bits.
func (b Bitmap) Count() int { return bits.OnesCount64(uint64(b)) }

// Any reports whether any bit is set.
func (b Bitmap) Any() bool { return b != 0 }

// SetRange sets the bits for every cacheline overlapping the byte range
// [off, off+n) within the block. It panics if the range exceeds the block.
func (b *Bitmap) SetRange(off, n int) {
	*b |= RangeMask(off, n)
}

// ClearRange clears the bits for every cacheline overlapping [off, off+n).
func (b *Bitmap) ClearRange(off, n int) {
	*b &^= RangeMask(off, n)
}

// RangeMask returns a bitmap with the bits set for every cacheline
// overlapping the byte range [off, off+n) within a block.
func RangeMask(off, n int) Bitmap {
	if n <= 0 {
		return 0
	}
	if off < 0 || off+n > BlockSize {
		panic("cacheline: range out of block bounds")
	}
	first := off / Size
	last := (off + n - 1) / Size
	width := last - first + 1
	if width >= 64 {
		return Full
	}
	return Bitmap((uint64(1)<<uint(width) - 1) << uint(first))
}

// Run is a maximal run of consecutive cachelines whose bits share one value.
type Run struct {
	// Off is the byte offset of the run within the block.
	Off int
	// Len is the byte length of the run.
	Len int
	// Set reports the common bit value of the run.
	Set bool
}

// Runs appends to dst the maximal runs of consecutive equal bits covering
// cachelines [firstLine, lastLine] and returns the extended slice. Callers
// use it to issue one copy per run rather than one per cacheline.
func (b Bitmap) Runs(dst []Run, firstLine, lastLine int) []Run {
	if firstLine < 0 || lastLine >= PerBlock || firstLine > lastLine {
		panic("cacheline: run bounds out of range")
	}
	i := firstLine
	for i <= lastLine {
		v := b.Test(i)
		j := i + 1
		for j <= lastLine && b.Test(j) == v {
			j++
		}
		dst = append(dst, Run{Off: i * Size, Len: (j - i) * Size, Set: v})
		i = j
	}
	return dst
}

// LinesCovering returns the first and last cacheline indices overlapping the
// byte range [off, off+n) within a block. n must be positive.
func LinesCovering(off, n int) (first, last int) {
	if n <= 0 || off < 0 || off+n > BlockSize {
		panic("cacheline: bad byte range")
	}
	return off / Size, (off + n - 1) / Size
}

// LineCount returns the number of cachelines needed to cover n bytes
// starting at byte offset off within a block-aligned region.
func LineCount(off int64, n int) int {
	if n <= 0 {
		return 0
	}
	first := off / Size
	last := (off + int64(n) - 1) / Size
	return int(last - first + 1)
}
