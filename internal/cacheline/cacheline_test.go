package cacheline

import (
	"testing"
	"testing/quick"
)

func TestRangeMask(t *testing.T) {
	cases := []struct {
		off, n int
		want   Bitmap
	}{
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 3},
		{63, 2, 3},
		{64, 64, 2},
		{0, BlockSize, Full},
		{4032, 64, 1 << 63},
		{100, 0, 0},
	}
	for _, c := range cases {
		if got := RangeMask(c.off, c.n); got != c.want {
			t.Errorf("RangeMask(%d,%d) = %b, want %b", c.off, c.n, got, c.want)
		}
	}
}

func TestRangeMaskPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range mask")
		}
	}()
	RangeMask(4090, 100)
}

func TestSetClearTest(t *testing.T) {
	var b Bitmap
	for i := 0; i < PerBlock; i++ {
		if b.Test(i) {
			t.Fatalf("bit %d set in zero bitmap", i)
		}
	}
	b.Set(0)
	b.Set(63)
	if !b.Test(0) || !b.Test(63) || b.Count() != 2 {
		t.Fatalf("set/test broken: %b", b)
	}
	b.Clear(0)
	if b.Test(0) || b.Count() != 1 {
		t.Fatalf("clear broken: %b", b)
	}
}

func TestSetRangeMatchesMask(t *testing.T) {
	f := func(off uint16, n uint16) bool {
		o := int(off) % BlockSize
		ln := int(n) % (BlockSize - o)
		var b Bitmap
		b.SetRange(o, ln)
		return b == RangeMask(o, ln)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunsPartitionProperty(t *testing.T) {
	// Property: for any bitmap and bounds, the runs exactly tile the
	// requested line range, alternate in Set value, and agree with Test.
	f := func(bits uint64, a, b uint8) bool {
		lo := int(a) % PerBlock
		hi := int(b) % PerBlock
		if lo > hi {
			lo, hi = hi, lo
		}
		bm := Bitmap(bits)
		runs := bm.Runs(nil, lo, hi)
		pos := lo * Size
		for i, r := range runs {
			if r.Off != pos || r.Len <= 0 || r.Len%Size != 0 {
				return false
			}
			if i > 0 && runs[i-1].Set == r.Set {
				return false
			}
			for l := r.Off / Size; l < (r.Off+r.Len)/Size; l++ {
				if bm.Test(l) != r.Set {
					return false
				}
			}
			pos += r.Len
		}
		return pos == (hi+1)*Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLinesCovering(t *testing.T) {
	first, last := LinesCovering(0, 64)
	if first != 0 || last != 0 {
		t.Fatalf("got %d,%d", first, last)
	}
	first, last = LinesCovering(63, 2)
	if first != 0 || last != 1 {
		t.Fatalf("got %d,%d", first, last)
	}
	first, last = LinesCovering(0, BlockSize)
	if first != 0 || last != PerBlock-1 {
		t.Fatalf("got %d,%d", first, last)
	}
}

func TestLineCount(t *testing.T) {
	cases := []struct {
		off  int64
		n    int
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{1, 64, 2},
		{0, 4096, 64},
		{63, 1, 1},
		{63, 2, 2},
	}
	for _, c := range cases {
		if got := LineCount(c.off, c.n); got != c.want {
			t.Errorf("LineCount(%d,%d) = %d, want %d", c.off, c.n, got, c.want)
		}
	}
}
