package nvmm

import (
	"fmt"
	"sort"

	"hinfs/internal/cacheline"
)

// EventKind classifies a persist event — every point where the emulated
// cache hierarchy interacts with NVMM durability. These are the only
// instants a crash can be scheduled at: between two events the pending
// set does not change (stores only accumulate), so every reachable
// crash state is "the state just before event N, minus an arbitrary
// subset of pending cachelines".
type EventKind uint8

const (
	// EvFlush is a Flush call (clflush loop), observed before any of its
	// cachelines become durable.
	EvFlush EventKind = iota
	// EvWriteNT is a non-temporal store, observed before it persists.
	EvWriteNT
	// EvFence is an ordering fence (mfence).
	EvFence
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvFlush:
		return "flush"
	case EvWriteNT:
		return "writent"
	case EvFence:
		return "fence"
	}
	return "unknown"
}

// CrashPlan decides whether to capture a crash snapshot at a persist
// event. It is invoked synchronously on the persisting goroutine with
// the 1-based event ordinal, before the event's durability effects are
// applied — so at event N the cachelines that event N itself would
// persist are still pending and participate in torn-subset selection.
type CrashPlan func(ev int64, kind EventKind) bool

// SetCrashPlan installs (or, with nil, removes) the device's crash plan.
// The first event for which the plan returns true captures a CrashState
// snapshot, retrievable with TakeCrashState; subsequent triggers are
// ignored until the state is taken. Requires TrackPersistence to capture
// (the event counter itself always runs).
func (d *Device) SetCrashPlan(p CrashPlan) {
	if p == nil {
		d.plan.Store(nil)
		return
	}
	d.plan.Store(&p)
}

// PersistEvents returns the monotonic persist-event count: one per
// Flush, WriteNT and Fence issued so far.
func (d *Device) PersistEvents() int64 { return d.events.Load() }

// CrashState is a self-contained snapshot of the device's durability
// state at one persist event: the durable image plus the contents of
// every pending (stored-but-unflushed) cacheline. It is immutable and
// can materialize any number of post-crash device images, one per
// torn-subset seed.
type CrashState struct {
	event   int64
	kind    EventKind
	durable []byte
	lines   []pendingLine
}

type pendingLine struct {
	off  int64
	data [cacheline.Size]byte
}

// Event returns the 1-based persist-event ordinal the snapshot was
// captured at.
func (s *CrashState) Event() int64 { return s.event }

// Kind returns the kind of the persist event the snapshot was captured at.
func (s *CrashState) Kind() EventKind { return s.kind }

// PendingLines returns the number of cachelines that were stored but not
// yet durable at the crash point — the torn-subset candidates.
func (s *CrashState) PendingLines() int { return len(s.lines) }

// faultPoint advances the persist-event counter and, when an armed crash
// plan fires, captures a snapshot of the durability state. Called before
// the event's own persistence effects are applied.
func (d *Device) faultPoint(kind EventKind) {
	ev := d.events.Add(1)
	pp := d.plan.Load()
	if pp == nil {
		return
	}
	if !(*pp)(ev, kind) {
		return
	}
	if !d.cfg.TrackPersistence {
		return
	}
	d.pmu.Lock()
	if d.snapshot == nil {
		s := &CrashState{
			event:   ev,
			kind:    kind,
			durable: make([]byte, len(d.durable)),
			lines:   make([]pendingLine, 0, len(d.pending)),
		}
		copy(s.durable, d.durable)
		for off := range d.pending {
			var l pendingLine
			l.off = off
			hi := off + cacheline.Size
			if hi > d.cfg.Size {
				hi = d.cfg.Size
			}
			copy(l.data[:], d.data[off:hi])
			s.lines = append(s.lines, l)
		}
		sort.Slice(s.lines, func(i, j int) bool { return s.lines[i].off < s.lines[j].off })
		d.snapshot = s
	}
	d.pmu.Unlock()
}

// TakeCrashState returns the snapshot captured by the crash plan and
// clears it (re-arming the plan), or nil if none has been captured.
func (d *Device) TakeCrashState() *CrashState {
	d.pmu.Lock()
	s := d.snapshot
	d.snapshot = nil
	d.pmu.Unlock()
	return s
}

// keepLine decides, for one pending cacheline, whether the crash left it
// persisted (true) or dropped (false). Seed 0 is the classic all-drop
// crash; any other seed keeps a pseudo-random ~half of the pending set,
// modelling arbitrary cache eviction order. The choice is a pure
// function of (seed, offset), so a given seed is fully deterministic.
func keepLine(seed uint64, off int64) bool {
	if seed == 0 {
		return false
	}
	x := seed ^ uint64(off)*0x9e3779b97f4a7c15
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x&1 == 1
}

// Materialize builds a fresh persistence-tracking device holding the
// post-crash image: the durable state plus the pseudo-random subset of
// pending cachelines selected by seed (seed 0 = all dropped). The new
// device uses cfg for size-independent knobs; its size is forced to the
// snapshot's.
func (s *CrashState) Materialize(cfg Config, seed uint64) (*Device, error) {
	cfg.Size = int64(len(s.durable))
	cfg.TrackPersistence = true
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	copy(d.data, s.durable)
	for _, l := range s.lines {
		if keepLine(seed, l.off) {
			hi := l.off + cacheline.Size
			if hi > cfg.Size {
				hi = cfg.Size
			}
			copy(d.data[l.off:hi], l.data[:hi-l.off])
		}
	}
	copy(d.durable, d.data)
	return d, nil
}

// CrashPartial simulates power loss in place, like Crash, but keeps the
// pseudo-random subset of pending cachelines selected by seed (seed 0
// drops all pending lines, equivalent to Crash). Kept lines become part
// of the durable image — exactly as if the cache had evicted them just
// before the power failed. It panics unless the device was created with
// TrackPersistence.
func (d *Device) CrashPartial(seed uint64) {
	if !d.cfg.TrackPersistence {
		panic("nvmm: CrashPartial requires TrackPersistence")
	}
	d.pmu.Lock()
	for off := range d.pending {
		if keepLine(seed, off) {
			hi := off + cacheline.Size
			if hi > d.cfg.Size {
				hi = d.cfg.Size
			}
			copy(d.durable[off:hi], d.data[off:hi])
		}
	}
	copy(d.data, d.durable)
	d.pending = make(map[int64]struct{})
	d.pmu.Unlock()
}

// String renders a short identification of the crash point for repro
// output.
func (s *CrashState) String() string {
	return fmt.Sprintf("event %d (%s, %d pending lines)", s.event, s.kind, len(s.lines))
}
