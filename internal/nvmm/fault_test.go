package nvmm

import (
	"bytes"
	"testing"

	"hinfs/internal/cacheline"
)

func trackedDev(t *testing.T) *Device {
	t.Helper()
	d, err := New(Config{Size: 1 << 20, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPersistEventCounter(t *testing.T) {
	d := trackedDev(t)
	buf := make([]byte, 128)
	d.Write(buf, 0)
	if got := d.PersistEvents(); got != 0 {
		t.Fatalf("plain Write counted as persist event: %d", got)
	}
	d.Flush(0, 128)
	d.Fence()
	d.WriteNT(buf, 4096)
	if got := d.PersistEvents(); got != 3 {
		t.Fatalf("PersistEvents = %d, want 3 (flush+fence+writent)", got)
	}
}

func TestCrashPlanSnapshotPrePersist(t *testing.T) {
	d := trackedDev(t)
	pattern := bytes.Repeat([]byte{0xab}, cacheline.Size)
	d.Write(pattern, 0)
	// Arm the plan to fire at the very next event: the Flush that would
	// make the line durable. The snapshot must see the line still pending.
	d.SetCrashPlan(func(ev int64, kind EventKind) bool { return true })
	d.Flush(0, cacheline.Size)
	s := d.TakeCrashState()
	if s == nil {
		t.Fatal("no snapshot captured")
	}
	if s.Kind() != EvFlush || s.Event() != 1 {
		t.Fatalf("snapshot at %v, want event 1 flush", s)
	}
	if s.PendingLines() != 1 {
		t.Fatalf("PendingLines = %d, want 1 (snapshot taken pre-persist)", s.PendingLines())
	}
	// The device itself carried on: the flush completed after the snapshot.
	if d.PendingLines() != 0 {
		t.Fatalf("device still has %d pending lines after flush", d.PendingLines())
	}

	// Seed 0 drops the pending line; a materialized image must not
	// contain the pattern.
	img, err := s.Materialize(Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, cacheline.Size)
	img.Read(got, 0)
	if bytes.Equal(got, pattern) {
		t.Fatal("seed 0 materialization kept a pending line")
	}
}

func TestMaterializeDeterministicSubset(t *testing.T) {
	d := trackedDev(t)
	// Dirty 64 distinct cachelines, none flushed.
	line := bytes.Repeat([]byte{0x5a}, cacheline.Size)
	for i := 0; i < 64; i++ {
		d.Write(line, int64(i)*cacheline.Size)
	}
	d.SetCrashPlan(func(ev int64, kind EventKind) bool { return true })
	d.Fence()
	s := d.TakeCrashState()
	if s == nil || s.PendingLines() != 64 {
		t.Fatalf("snapshot = %v, want 64 pending lines", s)
	}

	kept := func(img *Device) []int {
		var ks []int
		got := make([]byte, cacheline.Size)
		for i := 0; i < 64; i++ {
			img.Read(got, int64(i)*cacheline.Size)
			if bytes.Equal(got, line) {
				ks = append(ks, i)
			}
		}
		return ks
	}
	a1, err := s.Materialize(Config{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Materialize(Config{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Materialize(Config{}, 43)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, kb := kept(a1), kept(a2), kept(b)
	if len(k1) == 0 || len(k1) == 64 {
		t.Fatalf("seed 42 kept %d/64 lines, want a proper subset", len(k1))
	}
	if !equalInts(k1, k2) {
		t.Fatalf("same seed, different subsets: %v vs %v", k1, k2)
	}
	if equalInts(k1, kb) {
		t.Fatalf("different seeds produced identical subsets")
	}
}

func TestCrashPartialInPlace(t *testing.T) {
	d := trackedDev(t)
	line := bytes.Repeat([]byte{0x77}, cacheline.Size)
	for i := 0; i < 32; i++ {
		d.Write(line, int64(i)*cacheline.Size)
	}
	d.CrashPartial(7)
	if d.PendingLines() != 0 {
		t.Fatalf("pending after CrashPartial: %d", d.PendingLines())
	}
	keptN := 0
	got := make([]byte, cacheline.Size)
	for i := 0; i < 32; i++ {
		d.Read(got, int64(i)*cacheline.Size)
		if bytes.Equal(got, line) {
			keptN++
		}
	}
	if keptN == 0 || keptN == 32 {
		t.Fatalf("CrashPartial kept %d/32 lines, want a proper subset", keptN)
	}
	// Seed 0 behaves like Crash: drop everything.
	d2 := trackedDev(t)
	d2.Write(line, 0)
	d2.CrashPartial(0)
	d2.Read(got, 0)
	if bytes.Equal(got, line) {
		t.Fatal("CrashPartial(0) kept a pending line")
	}
}

func TestCrashPlanRearmsAfterTake(t *testing.T) {
	d := trackedDev(t)
	var fireAt int64 = 2
	d.SetCrashPlan(func(ev int64, kind EventKind) bool { return ev == fireAt })
	d.Write([]byte{1}, 0)
	d.Flush(0, 1) // event 1
	d.Fence()     // event 2: snapshot
	if s := d.TakeCrashState(); s == nil || s.Event() != 2 {
		t.Fatalf("first snapshot = %v, want event 2", s)
	}
	fireAt = 4
	d.Fence() // event 3
	d.Fence() // event 4: snapshot again after take
	if s := d.TakeCrashState(); s == nil || s.Event() != 4 {
		t.Fatalf("second snapshot missing (plan did not re-arm)")
	}
	d.SetCrashPlan(nil)
	d.Fence()
	if s := d.TakeCrashState(); s != nil {
		t.Fatalf("snapshot captured with nil plan: %v", s)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
