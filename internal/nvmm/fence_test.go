package nvmm

import (
	"sync"
	"testing"
)

func fenceTestDev(t *testing.T) *Device {
	t.Helper()
	d, err := New(Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFenceScopeCoalesces is the core contract: K independent ops, each
// ending in a trailing fence, issue exactly one real fence per scope.
func TestFenceScopeCoalesces(t *testing.T) {
	d := fenceTestDev(t)
	buf := make([]byte, 64)
	s := d.EnterFenceScope()
	for op := 0; op < 4; op++ {
		d.Write(buf, int64(op)*64)
		d.Flush(int64(op)*64, 64)
		d.Fence() // trailing
		s.OpBoundary()
	}
	s.Close()
	st := d.Stats()
	if st.Fences != 1 {
		t.Errorf("Fences = %d, want 1", st.Fences)
	}
	if st.FencesElided != 3 {
		t.Errorf("FencesElided = %d, want 3", st.FencesElided)
	}
}

// TestFenceScopeIntraOpOrdering: a fence between two dependent persists
// of the same op must materialize before the second store, coalescing
// only the trailing fence.
func TestFenceScopeIntraOpOrdering(t *testing.T) {
	d := fenceTestDev(t)
	buf := make([]byte, 64)
	s := d.EnterFenceScope()
	for op := 0; op < 2; op++ {
		base := int64(op) * 256
		d.Write(buf, base)
		d.Flush(base, 64)
		d.Fence() // orders entry body before valid bit — must be real
		d.Write(buf, base+64)
		d.Flush(base+64, 64)
		d.Fence() // trailing
		s.OpBoundary()
	}
	s.Close()
	st := d.Stats()
	// 2 intra-op fences materialized + 1 closing fence; 1 elided.
	if st.Fences != 3 {
		t.Errorf("Fences = %d, want 3", st.Fences)
	}
	if st.FencesElided != 1 {
		t.Errorf("FencesElided = %d, want 1", st.FencesElided)
	}
}

// TestFenceScopeSingleOp: a batch of one coalesces nothing but still
// issues its trailing fence exactly once.
func TestFenceScopeSingleOp(t *testing.T) {
	d := fenceTestDev(t)
	s := d.EnterFenceScope()
	d.Flush(0, 64)
	d.Fence()
	s.OpBoundary()
	s.Close()
	st := d.Stats()
	if st.Fences != 1 || st.FencesElided != 0 {
		t.Errorf("Fences = %d, FencesElided = %d, want 1, 0", st.Fences, st.FencesElided)
	}
}

// TestFenceScopeNoFence: a scope whose body never fences must not fence
// at Close either.
func TestFenceScopeNoFence(t *testing.T) {
	d := fenceTestDev(t)
	s := d.EnterFenceScope()
	d.Write(make([]byte, 64), 0)
	s.OpBoundary()
	s.Close()
	if st := d.Stats(); st.Fences != 0 || st.FencesElided != 0 {
		t.Errorf("Fences = %d, FencesElided = %d, want 0, 0", st.Fences, st.FencesElided)
	}
}

// TestFenceScopeNested: re-entering the same device's scope nests; only
// the outermost Close fences.
func TestFenceScopeNested(t *testing.T) {
	d := fenceTestDev(t)
	outer := d.EnterFenceScope()
	d.Flush(0, 64)
	d.Fence()
	outer.OpBoundary()
	inner := d.EnterFenceScope()
	if inner != outer {
		t.Fatal("nested entry did not return the outer scope")
	}
	d.Flush(64, 64)
	d.Fence()
	inner.Close()
	if st := d.Stats(); st.Fences != 0 {
		t.Errorf("inner Close fenced: %d", st.Fences)
	}
	outer.OpBoundary()
	outer.Close()
	st := d.Stats()
	if st.Fences != 1 || st.FencesElided != 1 {
		t.Errorf("Fences = %d, FencesElided = %d, want 1, 1", st.Fences, st.FencesElided)
	}
}

// TestFenceScopeOtherDevice: a scope binds one device; another device's
// fences on the same goroutine stay real, and entering the second
// device's scope while the first is attached runs detached.
func TestFenceScopeOtherDevice(t *testing.T) {
	d1 := fenceTestDev(t)
	d2 := fenceTestDev(t)
	s := d1.EnterFenceScope()
	d2.Fence()
	if st := d2.Stats(); st.Fences != 1 {
		t.Errorf("other device's fence absorbed: %d", st.Fences)
	}
	s2 := d2.EnterFenceScope()
	d2.Fence()
	s2.OpBoundary()
	s2.Close()
	if st := d2.Stats(); st.Fences != 2 || st.FencesElided != 0 {
		t.Errorf("detached scope coalesced: Fences %d, elided %d", st.Fences, st.FencesElided)
	}
	d1.Fence()
	s.OpBoundary()
	s.Close()
	if st := d1.Stats(); st.Fences != 1 {
		t.Errorf("d1 Fences = %d, want 1", st.Fences)
	}
}

// TestFenceScopeGoroutineLocal: a scope on one goroutine must not absorb
// fences issued by others.
func TestFenceScopeGoroutineLocal(t *testing.T) {
	d := fenceTestDev(t)
	s := d.EnterFenceScope()
	defer func() {
		s.OpBoundary()
		s.Close()
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Fence()
		}()
	}
	wg.Wait()
	if st := d.Stats(); st.Fences != 8 {
		t.Errorf("Fences = %d, want 8 (foreign goroutines coalesced)", st.Fences)
	}
}

// TestFenceScopeZeroAllocs: the scoped fence path is a server hot path
// and must not allocate.
func TestFenceScopeZeroAllocs(t *testing.T) {
	d := fenceTestDev(t)
	allocs := testing.AllocsPerRun(200, func() {
		s := d.EnterFenceScope()
		d.Flush(0, 64)
		d.Fence()
		s.OpBoundary()
		d.Fence()
		s.OpBoundary()
		s.Close()
	})
	if allocs != 0 {
		t.Errorf("scoped fence path allocates %.1f/op, want 0", allocs)
	}
}

// TestResetStatsClearsElided keeps the new counter in the reset set.
func TestResetStatsClearsElided(t *testing.T) {
	d := fenceTestDev(t)
	s := d.EnterFenceScope()
	d.Fence()
	s.OpBoundary()
	d.Fence()
	s.OpBoundary()
	s.Close()
	if st := d.Stats(); st.FencesElided != 1 {
		t.Fatalf("FencesElided = %d, want 1", st.FencesElided)
	}
	d.ResetStats()
	if st := d.Stats(); st.FencesElided != 0 || st.Fences != 0 {
		t.Errorf("counters survive reset: %+v", st)
	}
}
