package nvmm

import (
	"encoding/binary"
	"fmt"
	"io"
)

// imageMagic identifies a serialized device image.
const imageMagic = 0x48694e46532d494d // "HiNFS-IM"

// Save serializes the device's current (cached) image to w, so an
// emulated NVMM can outlive the process — the moral equivalent of the
// DIMM retaining its contents. Callers should quiesce and flush (unmount)
// first; Save captures the byte image, not the pending/durable split.
func (d *Device) Save(w io.Writer) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], imageMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(d.cfg.Size))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nvmm: save header: %w", err)
	}
	if _, err := w.Write(d.data); err != nil {
		return fmt.Errorf("nvmm: save image: %w", err)
	}
	return nil
}

// Load creates a device from a serialized image, applying cfg's
// performance model. cfg.Size must be zero (inferred from the image) or
// match it.
func Load(r io.Reader, cfg Config) (*Device, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("nvmm: load header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != imageMagic {
		return nil, fmt.Errorf("nvmm: not a device image")
	}
	size := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if cfg.Size != 0 && cfg.Size != size {
		return nil, fmt.Errorf("nvmm: image size %d != configured size %d", size, cfg.Size)
	}
	cfg.Size = size
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, d.data); err != nil {
		return nil, fmt.Errorf("nvmm: load image: %w", err)
	}
	if cfg.TrackPersistence {
		copy(d.durable, d.data) // the loaded image is the durable state
	}
	return d, nil
}
