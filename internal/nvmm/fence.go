package nvmm

import (
	"sync"
	"sync/atomic"

	"hinfs/internal/goid"
)

// Fence coalescing.
//
// A batch of independent operations dispatched together (the server's
// per-tenant dispatch batch) each ends with a trailing Fence() — the
// ordering point that makes the op's last persist visible before its
// reply. Between independent ops those trailing fences are redundant:
// one fence at the end of the batch orders everything the batch
// persisted (NVLog's group-barrier observation). A FenceScope captures
// exactly that: while a goroutine runs inside a scope,
//
//   - Fence() becomes pending instead of issuing (latency and the
//     fault-plane event are both skipped);
//   - any subsequent store or flush on the same goroutine materializes
//     the pending fence first, so ordering *within* an op — fence
//     between dependent persists — is preserved exactly;
//   - OpBoundary() marks the seam between independent ops: a fence
//     still pending there is provably trailing and is deferred to the
//     scope's end;
//   - Close() issues one real fence covering every deferred trailing
//     fence and counts the rest as elided (Stats.FencesElided).
//
// Elided fences never reach the fault plane, so the crash explorer sees
// the coalesced persist-event schedule — the schedule it verifies is the
// schedule production runs.
//
// Attachment is goroutine-local via the same open-addressed
// goroutine-ID table obs uses for OpCtx: deep layers (journal, pmfs,
// core) call d.Fence() through interfaces that must not grow scope
// parameters. When no scope is active anywhere, Fence() pays one atomic
// load over the old path.

const (
	fsSlots    = 512 // power of two
	fsMaxProbe = 16
)

type fsEntry struct {
	gid   atomic.Int64
	scope atomic.Pointer[FenceScope]
	_     [6]uint64 // pad to a cacheline to keep neighbors independent
}

var (
	fsTab    [fsSlots]fsEntry
	fsActive atomic.Int64

	scopePool = sync.Pool{New: func() any { return new(FenceScope) }}
)

// fenceGoid is the table key; goid.ID keeps the per-fence and
// per-store lookups at nanoseconds.
func fenceGoid() int64 { return goid.ID() }

func fsHash(gid int64) uint64 { return uint64(gid) * 0x9e3779b97f4a7c15 }

// FenceScope is a goroutine-attached fence-coalescing window. Not safe
// for concurrent use: it belongs to the goroutine that entered it.
type FenceScope struct {
	d        *Device
	slot     int32
	attached bool
	depth    int32
	// pending is a requested-but-unissued fence with no store after it
	// yet — it may still need to materialize if the current op stores
	// again, or it may prove trailing at the next OpBoundary.
	pending bool
	// deferred counts trailing fences already proven safe to coalesce.
	deferred int64
}

// EnterFenceScope opens a coalescing window for the calling goroutine.
// Nested entry on the same goroutine and device returns the same scope
// (Close unwinds the nesting); entry while a scope for a different
// device is attached returns a detached scope, under which fences stay
// real. The scope must be Closed on the same goroutine.
func (d *Device) EnterFenceScope() *FenceScope {
	gid := fenceGoid()
	h := fsHash(gid)
	if fsActive.Load() != 0 {
		for i := 0; i < fsMaxProbe; i++ {
			e := &fsTab[(h+uint64(i))%fsSlots]
			if e.gid.Load() == gid {
				s := e.scope.Load()
				if s != nil && s.d == d {
					s.depth++
					return s
				}
				// Another device's scope owns this goroutine; don't
				// entangle the two — run detached.
				return &FenceScope{d: d}
			}
		}
	}
	s := scopePool.Get().(*FenceScope)
	s.d = d
	s.depth = 0
	s.pending = false
	s.deferred = 0
	s.attached = false
	for i := 0; i < fsMaxProbe; i++ {
		idx := (h + uint64(i)) % fsSlots
		e := &fsTab[idx]
		if e.gid.CompareAndSwap(0, gid) {
			e.scope.Store(s)
			s.slot = int32(idx)
			s.attached = true
			fsActive.Add(1)
			return s
		}
	}
	// Probe window full (pathological collision): run detached; every
	// fence stays real, so only the optimization is lost.
	return s
}

// fenceScope returns the scope attached to the calling goroutine for
// this device, or nil. One atomic load when no scope is active anywhere.
func (d *Device) fenceScope() *FenceScope {
	if fsActive.Load() == 0 {
		return nil
	}
	gid := fenceGoid()
	h := fsHash(gid)
	for i := 0; i < fsMaxProbe; i++ {
		e := &fsTab[(h+uint64(i))%fsSlots]
		if e.gid.Load() == gid {
			if s := e.scope.Load(); s != nil && s.d == d {
				return s
			}
			return nil
		}
	}
	return nil
}

// materializeFence issues a pending in-scope fence before a store or
// flush, preserving intra-op ordering under coalescing: a fence between
// two dependent persists on the same goroutine always lands between
// them on the device's event stream.
//
// The fencesPending gate makes this nearly free on the common path: the
// goroutine-ID lookup only runs while some scope on this device holds a
// pending fence, a window that closes at the owner's next store or
// OpBoundary. Only the owning goroutine's view of the gate matters for
// correctness — a pending fence must materialize before *that
// goroutine's* next store, and the owner always observes its own
// counter increment; other goroutines' lookups are no-ops either way.
func (d *Device) materializeFence() {
	if d.fencesPending.Load() == 0 {
		return
	}
	if s := d.fenceScope(); s != nil && s.pending {
		s.pending = false
		d.fencesPending.Add(-1)
		d.fenceReal()
	}
}

// OpBoundary marks the seam between two independent operations in the
// batch: a fence still pending here trails its op and is deferred to
// the scope's single closing fence. Nil-safe.
func (s *FenceScope) OpBoundary() {
	if s == nil {
		return
	}
	if s.pending {
		s.pending = false
		s.d.fencesPending.Add(-1)
		s.deferred++
	}
}

// Close ends the window: one real fence stands in for every fence the
// scope absorbed, and the surplus is counted in Stats.FencesElided.
// Nil-safe; nested entries unwind without fencing.
func (s *FenceScope) Close() {
	if s == nil {
		return
	}
	if s.depth > 0 {
		s.depth--
		return
	}
	absorbed := s.deferred
	d := s.d
	if s.pending {
		absorbed++
		s.pending = false
		d.fencesPending.Add(-1)
	}
	if s.attached {
		e := &fsTab[s.slot]
		e.scope.Store(nil)
		e.gid.Store(0)
		fsActive.Add(-1)
		s.attached = false
	}
	// Detach before fencing so the closing fence is real even though it
	// runs on the scope's own goroutine.
	if absorbed > 0 {
		d.fenceReal()
		d.fencesElided.Add(absorbed - 1)
	}
	s.d = nil
	s.pending = false
	s.deferred = 0
	scopePool.Put(s)
}
