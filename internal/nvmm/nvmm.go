// Package nvmm emulates a byte-addressable non-volatile main memory device.
//
// The emulator follows the model in the paper's §5.1: NVMM is backed by
// ordinary (DRAM) memory; loads run at DRAM speed; each store becomes
// durable only when the covering cachelines are flushed, and every flushed
// cacheline pays a configurable extra write latency (200 ns by default).
// Aggregate write bandwidth is capped by bounding the number of concurrent
// flushing threads ("writer slots"), mirroring the paper's
// Nw = B_nvmm / (1/L_nvmm) queueing scheme.
//
// An optional persistence-tracking mode keeps a shadow image holding only
// flushed data, so tests can call Crash and observe exactly the state a
// real NVMM would retain after power loss: stores that were never flushed
// disappear.
package nvmm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/cacheline"
	"hinfs/internal/obs"
)

// Config describes the emulated device.
type Config struct {
	// Size is the device capacity in bytes. It must be a positive multiple
	// of the block size.
	Size int64
	// WriteLatency is the extra latency charged per flushed cacheline,
	// emulating NVMM's slow writes (default 200 ns).
	WriteLatency time.Duration
	// ReadLatency is the extra latency charged per cacheline read. The
	// paper assumes NVMM reads run at DRAM speed, so this defaults to 0.
	ReadLatency time.Duration
	// WriteBandwidth caps aggregate write bandwidth in bytes/second by
	// limiting concurrent flushers. Zero means unlimited.
	WriteBandwidth int64
	// TrackPersistence enables the shadow durable image and Crash support.
	// It roughly doubles memory use and serializes flushes, so it is meant
	// for tests, not benchmarks.
	TrackPersistence bool
	// TimeScale multiplies every emulated delay (default 1). Benchmarks on
	// machines with few cores run with TimeScale >> 1 so that delays are
	// long enough to be slept through rather than spun, letting emulated
	// device time overlap across goroutines; all figures report ratios, so
	// scaling cancels out. Nw (the bandwidth cap's concurrent-writer
	// bound) is computed from the unscaled latency and bandwidth.
	TimeScale float64
}

// DefaultConfig returns the paper's Table-2 device: 200 ns write latency
// and 1 GB/s write bandwidth, at the given capacity.
func DefaultConfig(size int64) Config {
	return Config{
		Size:           size,
		WriteLatency:   200 * time.Nanosecond,
		WriteBandwidth: 1 << 30,
	}
}

// Stats aggregates device counters. Times are cumulative across threads,
// so they exceed wall-clock time for concurrent runs.
type Stats struct {
	// BytesRead counts bytes copied out of the device.
	BytesRead int64
	// BytesWritten counts bytes stored into the device.
	BytesWritten int64
	// BytesFlushed counts bytes made durable (cachelines × 64).
	BytesFlushed int64
	// Flushes counts Flush calls.
	Flushes int64
	// Fences counts ordering fences actually issued to the device.
	Fences int64
	// FencesElided counts redundant trailing fences absorbed by
	// FenceScope coalescing: fences requested by the software above but
	// covered by a batch's single closing fence (see fence.go). Fences +
	// FencesElided is what an uncoalesced run would have issued.
	FencesElided int64
	// ReadTime is the cumulative emulated device time charged by Read
	// (read latency per covered cacheline).
	ReadTime time.Duration
	// WriteTime is the cumulative emulated device time charged by
	// persists (write latency per covered cacheline plus bandwidth
	// queueing). Cached stores (Write) charge nothing until flushed,
	// like real stores. Analytic, not wall-clock: it is pure device
	// physics, free of scheduler noise — and free of per-op clock reads.
	WriteTime time.Duration
}

// Device is an emulated NVMM device. All byte ranges are validated;
// overlapping concurrent access to the same range must be prevented by the
// caller (the file systems lock at file/allocation granularity).
type Device struct {
	cfg  Config
	data []byte

	// Write ports model the bandwidth cap: Nw ports, each busy until the
	// stored nanosecond timestamp (relative to base). A flusher claims the
	// earliest-free port via CAS and waits out its own completion time, so
	// aggregate write bandwidth never exceeds Nw cachelines per latency.
	ports []atomic.Int64
	base  time.Time

	effWrite time.Duration // scaled write latency per cacheline
	effRead  time.Duration // scaled read latency per cacheline

	// statsMu serializes whole-snapshot reads (Stats) against whole-set
	// resets (ResetStats): the counters themselves are atomics, but
	// without the lock a snapshot racing a reset could mix pre- and
	// post-reset values.
	statsMu      sync.Mutex
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	bytesFlushed atomic.Int64
	flushes      atomic.Int64
	fences       atomic.Int64
	fencesElided atomic.Int64
	// fencesPending counts this device's fence scopes holding a pending
	// (requested but unissued) fence. It gates materializeFence: stores
	// and flushes only pay the goroutine-ID lookup when some scope might
	// actually need materializing — one atomic load otherwise, which
	// keeps scoped batches from taxing every other goroutine's hot path.
	fencesPending atomic.Int64
	readTime      atomic.Int64
	writeTime     atomic.Int64

	// col, when set, receives per-persist flush latency observations
	// (obs.PathNVMMFlush). Set before concurrent use.
	col atomic.Pointer[obs.Collector]

	// Fault plane (see fault.go): persist-event counter, optional crash
	// plan and the snapshot it captures.
	events   atomic.Int64
	plan     atomic.Pointer[CrashPlan]
	snapshot *CrashState // guarded by pmu

	// Persistence tracking (TrackPersistence only).
	pmu     sync.Mutex
	durable []byte
	pending map[int64]struct{} // dirty cacheline start offsets
}

// New creates a device from cfg.
func New(cfg Config) (*Device, error) {
	if cfg.Size <= 0 || cfg.Size%cacheline.BlockSize != 0 {
		return nil, fmt.Errorf("nvmm: size %d must be a positive multiple of %d", cfg.Size, cacheline.BlockSize)
	}
	scale := cfg.TimeScale
	if scale == 0 {
		scale = 1
	}
	d := &Device{
		cfg:      cfg,
		data:     make([]byte, cfg.Size),
		base:     time.Now(),
		effWrite: time.Duration(float64(cfg.WriteLatency) * scale),
		effRead:  time.Duration(float64(cfg.ReadLatency) * scale),
	}
	if cfg.WriteBandwidth > 0 && cfg.WriteLatency > 0 {
		n := int(cfg.WriteBandwidth * int64(cfg.WriteLatency) / int64(time.Second) / cacheline.Size)
		if n < 1 {
			n = 1
		}
		d.ports = make([]atomic.Int64, n)
	}
	if cfg.TrackPersistence {
		d.durable = make([]byte, cfg.Size)
		d.pending = make(map[int64]struct{})
	}
	return d, nil
}

// MustNew is New for known-good configs; it panics on error.
func MustNew(cfg Config) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return d.cfg.Size }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// WriterSlots returns the number of concurrent writer ports (0 =
// unlimited) — the paper's Nw bandwidth bound.
func (d *Device) WriterSlots() int { return len(d.ports) }

func (d *Device) check(off int64, n int) {
	if off < 0 || n < 0 || off+int64(n) > d.cfg.Size {
		panic(fmt.Sprintf("nvmm: access [%d,%d) outside device of size %d", off, off+int64(n), d.cfg.Size))
	}
}

// Read copies len(dst) bytes at off into dst (an NVMM load).
func (d *Device) Read(dst []byte, off int64) {
	d.check(off, len(dst))
	copy(dst, d.data[off:])
	if d.effRead > 0 {
		cost := time.Duration(cacheline.LineCount(off, len(dst))) * d.effRead
		Wait(cost)
		d.readTime.Add(int64(cost))
	}
	d.bytesRead.Add(int64(len(dst)))
}

// Write stores src at off. Like a CPU store, the data lands in the (cached)
// image immediately but is not durable until Flush covers it. A cached
// store charges no device time — that is the point of the DRAM-speed
// store path — so nothing accrues to Stats.WriteTime here.
func (d *Device) Write(src []byte, off int64) {
	d.check(off, len(src))
	d.materializeFence()
	copy(d.data[off:], src)
	d.bytesWritten.Add(int64(len(src)))
	if d.cfg.TrackPersistence {
		d.markPending(off, len(src))
	}
}

// WriteNT stores src at off with a non-temporal (cache-bypassing) store and
// makes it durable, paying the write latency for each covered cacheline.
// This models PMFS's copy_from_user_inatomic_nocache path.
func (d *Device) WriteNT(src []byte, off int64) {
	d.check(off, len(src))
	d.materializeFence()
	copy(d.data[off:], src)
	d.bytesWritten.Add(int64(len(src)))
	if d.cfg.TrackPersistence {
		d.markPending(off, len(src))
	}
	d.faultPoint(EvWriteNT)
	d.persist(off, len(src))
}

// WriteNTPosted stores src at off with a non-temporal store that is
// *posted*: durability semantics are identical to WriteNT (the lines
// commit at this persist event, so a crash snapshot taken at it still
// sees them pending/torn), but the issuing CPU never waits on the
// media — the store drains from the write-combining buffer in the
// background. This is the honest timing model for a caller that never
// fences the store (the flight recorder): on real hardware an unfenced
// movnti retires immediately; only a subsequent sfence pays the drain.
// Stats count the flush bytes but no synchronous write time accrues.
func (d *Device) WriteNTPosted(src []byte, off int64) {
	d.check(off, len(src))
	d.materializeFence()
	copy(d.data[off:], src)
	d.bytesWritten.Add(int64(len(src)))
	if d.cfg.TrackPersistence {
		d.markPending(off, len(src))
	}
	d.faultPoint(EvWriteNT)
	d.flushes.Add(1)
	d.bytesFlushed.Add(int64(cacheline.LineCount(off, len(src))) * cacheline.Size)
	if d.cfg.TrackPersistence {
		d.commitPending(off, len(src))
	}
}

// Flush makes the byte range [off, off+n) durable, paying the write latency
// for each covered cacheline (a clflush loop).
func (d *Device) Flush(off int64, n int) {
	d.check(off, n)
	if n == 0 {
		return
	}
	d.materializeFence()
	d.faultPoint(EvFlush)
	d.persist(off, n)
}

// SetObs attaches a collector receiving flush-latency observations
// (including bandwidth queueing time), or detaches with nil.
func (d *Device) SetObs(c *obs.Collector) { d.col.Store(c) }

// persist charges latency and bandwidth for the covered cachelines and, in
// persistence-tracking mode, copies them to the durable image.
func (d *Device) persist(off int64, n int) {
	lines := cacheline.LineCount(off, n)
	d.flushes.Add(1)
	d.bytesFlushed.Add(int64(lines) * cacheline.Size)
	c := d.col.Load()
	// A server-attached foreground op charges its StageFlush here — the
	// most precise spot: pure emulated device latency including bandwidth
	// queueing. Background writeback goroutines are never attached, so
	// their flushes stay off the per-op breakdown automatically.
	//
	// With a collector attached, the charge is wall time around the wait
	// (the collector wants what the op actually experienced). Without
	// one, the charge is the analytically known device time — latency
	// plus port queueing — which spares the hot path two clock reads per
	// flush; on a flush-heavy path those reads are a measurable tax.
	op := obs.CurrentOp()
	var start time.Time
	if c != nil {
		start = time.Now()
	}
	var devNS int64
	if d.effWrite > 0 {
		cost := int64(lines) * int64(d.effWrite)
		if d.ports == nil {
			devNS = cost
			Wait(time.Duration(cost))
		} else {
			devNS = d.portWait(cost)
		}
	}
	if d.cfg.TrackPersistence {
		d.commitPending(off, n)
	}
	d.writeTime.Add(devNS)
	if c != nil {
		ns := time.Since(start).Nanoseconds()
		c.Path(obs.PathNVMMFlush, ns)
		op.Charge(obs.StageFlush, ns)
	} else {
		op.Charge(obs.StageFlush, devNS)
	}
}

// portWait claims the earliest-free write port, occupies it for cost
// nanoseconds, and waits until the occupation ends, returning the total
// nanoseconds waited (latency plus queueing). Equivalent to the paper's
// "an NVMM writing thread is queued when Nw writers are active".
func (d *Device) portWait(cost int64) int64 {
	for {
		now := int64(time.Since(d.base))
		pi, minBusy := 0, int64(1)<<62
		for i := range d.ports {
			if b := d.ports[i].Load(); b < minBusy {
				minBusy, pi = b, i
			}
		}
		start := minBusy
		if now > start {
			start = now
		}
		end := start + cost
		if d.ports[pi].CompareAndSwap(minBusy, end) {
			Wait(time.Duration(end - now))
			return end - now
		}
	}
}

// Slice returns a window aliasing device memory, emulating direct
// memory-mapped access (mmap). Stores through the slice are not durable
// until Flush covers the range, exactly like stores through a real mapping
// are not durable until msync. Persistence tracking does not observe
// stores made through a slice until the corresponding Flush.
func (d *Device) Slice(off int64, n int) []byte {
	d.check(off, n)
	return d.data[off : off+int64(n) : off+int64(n)]
}

// Fence is an ordering point (mfence). The Go memory model plus the
// file-system locks already order our operations, so it only counts
// (and feeds the persist-event stream, see fault.go). Inside a
// FenceScope the fence is held pending instead: it materializes before
// the goroutine's next store/flush, or coalesces into the scope's
// single closing fence if it proves trailing (see fence.go).
func (d *Device) Fence() {
	if s := d.fenceScope(); s != nil {
		if !s.pending {
			s.pending = true
			d.fencesPending.Add(1)
		}
		return
	}
	d.fenceReal()
}

func (d *Device) fenceReal() {
	d.faultPoint(EvFence)
	d.fences.Add(1)
}

func (d *Device) markPending(off int64, n int) {
	first := off &^ (cacheline.Size - 1)
	end := off + int64(n)
	d.pmu.Lock()
	for a := first; a < end; a += cacheline.Size {
		d.pending[a] = struct{}{}
	}
	d.pmu.Unlock()
}

func (d *Device) commitPending(off int64, n int) {
	first := off &^ (cacheline.Size - 1)
	end := off + int64(n)
	d.pmu.Lock()
	for a := first; a < end; a += cacheline.Size {
		hi := a + cacheline.Size
		if hi > d.cfg.Size {
			hi = d.cfg.Size
		}
		copy(d.durable[a:hi], d.data[a:hi])
		delete(d.pending, a)
	}
	d.pmu.Unlock()
}

// Crash simulates power loss: every store not yet flushed is discarded and
// the device image reverts to the durable state. It panics unless the
// device was created with TrackPersistence.
func (d *Device) Crash() {
	if !d.cfg.TrackPersistence {
		panic("nvmm: Crash requires TrackPersistence")
	}
	d.pmu.Lock()
	copy(d.data, d.durable)
	d.pending = make(map[int64]struct{})
	d.pmu.Unlock()
}

// PendingLines returns the number of cachelines stored but not yet flushed.
// It requires TrackPersistence.
func (d *Device) PendingLines() int {
	d.pmu.Lock()
	defer d.pmu.Unlock()
	return len(d.pending)
}

// Stats returns a snapshot of the device counters. It takes the same
// lock as ResetStats, so a snapshot can never observe a half-applied
// reset (it can still straddle an in-flight operation's own updates,
// which touch one counter at a time).
func (d *Device) Stats() Stats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return Stats{
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
		BytesFlushed: d.bytesFlushed.Load(),
		Flushes:      d.flushes.Load(),
		Fences:       d.fences.Load(),
		FencesElided: d.fencesElided.Load(),
		ReadTime:     time.Duration(d.readTime.Load()),
		WriteTime:    time.Duration(d.writeTime.Load()),
	}
}

// ResetStats zeroes the device counters, under the same lock Stats
// takes, so concurrent snapshots see either all-old or all-new values.
func (d *Device) ResetStats() {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	d.bytesRead.Store(0)
	d.bytesWritten.Store(0)
	d.bytesFlushed.Store(0)
	d.flushes.Store(0)
	d.fences.Store(0)
	d.fencesElided.Store(0)
	d.readTime.Store(0)
	d.writeTime.Store(0)
}

// Wait emulates a device delay of d. Long waits sleep through the bulk of
// the delay (so concurrent emulated operations overlap even on a single
// CPU) and spin the remainder for accuracy; short waits spin.
func Wait(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	if d > 150*time.Microsecond {
		time.Sleep(d - 100*time.Microsecond)
	}
	for time.Since(start) < d {
	}
}
