package nvmm

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"hinfs/internal/cacheline"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Size: 0}); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := New(Config{Size: 4097}); err == nil {
		t.Fatal("unaligned size accepted")
	}
	d, err := New(Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 1<<20 {
		t.Fatalf("size = %d", d.Size())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := MustNew(Config{Size: 1 << 20})
	data := []byte("hello, persistent world")
	d.Write(data, 4096)
	got := make([]byte, len(data))
	d.Read(got, 4096)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := MustNew(Config{Size: 1 << 20})
	d.Write(make([]byte, 128), 0)
	d.Flush(0, 128)
	d.Read(make([]byte, 64), 0)
	d.Fence()
	s := d.Stats()
	if s.BytesWritten != 128 || s.BytesRead != 64 {
		t.Fatalf("rw bytes: %+v", s)
	}
	if s.BytesFlushed != 128 {
		t.Fatalf("flushed %d, want 128", s.BytesFlushed)
	}
	if s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("ops: %+v", s)
	}
	d.ResetStats()
	if s := d.Stats(); s.BytesWritten != 0 || s.Flushes != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestFlushChargesPerCacheline(t *testing.T) {
	d := MustNew(Config{Size: 1 << 20, WriteLatency: 200 * time.Nanosecond})
	// Flushing one byte spanning a line boundary charges two lines.
	d.Write([]byte{1, 2}, 63)
	d.Flush(63, 2)
	if got := d.Stats().BytesFlushed; got != 2*cacheline.Size {
		t.Fatalf("flushed %d bytes, want %d", got, 2*cacheline.Size)
	}
}

func TestWriteLatencyIsCharged(t *testing.T) {
	lat := 2 * time.Microsecond
	d := MustNew(Config{Size: 1 << 20, WriteLatency: lat})
	const lines = 64
	start := time.Now()
	d.WriteNT(make([]byte, lines*cacheline.Size), 0)
	elapsed := time.Since(start)
	if elapsed < lines*lat {
		t.Fatalf("WriteNT of %d lines took %v, want >= %v", lines, elapsed, lines*lat)
	}
	if wt := d.Stats().WriteTime; wt < lines*lat {
		t.Fatalf("WriteTime %v < %v", wt, lines*lat)
	}
}

func TestReadLatencyIsCharged(t *testing.T) {
	lat := 2 * time.Microsecond
	d := MustNew(Config{Size: 1 << 20, ReadLatency: lat})
	start := time.Now()
	d.Read(make([]byte, 16*cacheline.Size), 0)
	if elapsed := time.Since(start); elapsed < 16*lat {
		t.Fatalf("read took %v, want >= %v", elapsed, 16*lat)
	}
}

func TestBandwidthWriterSlots(t *testing.T) {
	cfg := Config{Size: 1 << 20, WriteLatency: 200 * time.Nanosecond, WriteBandwidth: 1 << 30}
	d := MustNew(cfg)
	// 1 GB/s at 200 ns/line and 64 B lines → 1e9*200e-9/64 = 3 slots.
	if got := d.WriterSlots(); got != 3 {
		t.Fatalf("WriterSlots = %d, want 3", got)
	}
	d2 := MustNew(Config{Size: 1 << 20})
	if d2.WriterSlots() != 0 {
		t.Fatal("unlimited device has slots")
	}
}

func TestBandwidthCapsThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// 8 concurrent writers on a 1-slot device must serialize.
	lat := 10 * time.Microsecond
	d := MustNew(Config{Size: 1 << 20, WriteLatency: lat, WriteBandwidth: cacheline.Size * int64(time.Second/lat)})
	if d.WriterSlots() != 1 {
		t.Fatalf("slots = %d", d.WriterSlots())
	}
	const writers = 8
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.WriteNT(make([]byte, cacheline.Size), int64(i)*4096)
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < writers*lat {
		t.Fatalf("8 writers on 1 slot took %v, want >= %v", elapsed, writers*lat)
	}
}

func TestPersistenceTrackingCrash(t *testing.T) {
	d := MustNew(Config{Size: 1 << 20, TrackPersistence: true})
	d.Write([]byte("durable!"), 0)
	d.Flush(0, 8)
	d.Write([]byte("volatile"), 4096)
	if d.PendingLines() == 0 {
		t.Fatal("no pending lines after unflushed write")
	}
	d.Crash()
	got := make([]byte, 8)
	d.Read(got, 0)
	if string(got) != "durable!" {
		t.Fatalf("flushed data lost: %q", got)
	}
	d.Read(got, 4096)
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("unflushed data survived crash: %q", got)
	}
	if d.PendingLines() != 0 {
		t.Fatal("pending lines survive crash")
	}
}

func TestWriteNTIsImmediatelyDurable(t *testing.T) {
	d := MustNew(Config{Size: 1 << 20, TrackPersistence: true})
	d.WriteNT([]byte("nocache"), 128)
	d.Crash()
	got := make([]byte, 7)
	d.Read(got, 128)
	if string(got) != "nocache" {
		t.Fatalf("WriteNT not durable: %q", got)
	}
}

func TestSliceAliasesDeviceMemory(t *testing.T) {
	d := MustNew(Config{Size: 1 << 20})
	s := d.Slice(8192, 16)
	copy(s, "mapped")
	got := make([]byte, 6)
	d.Read(got, 8192)
	if string(got) != "mapped" {
		t.Fatalf("slice not aliased: %q", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	d := MustNew(Config{Size: 4096})
	for _, f := range []func(){
		func() { d.Read(make([]byte, 8), 4090) },
		func() { d.Write(make([]byte, 8), -1) },
		func() { d.Flush(0, 5000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on out-of-bounds access")
				}
			}()
			f()
		}()
	}
}

func TestDefaultConfigMatchesPaperTable2(t *testing.T) {
	c := DefaultConfig(1 << 20)
	if c.WriteLatency != 200*time.Nanosecond {
		t.Fatalf("latency %v", c.WriteLatency)
	}
	if c.WriteBandwidth != 1<<30 {
		t.Fatalf("bandwidth %d", c.WriteBandwidth)
	}
}

func TestImageSaveLoadRoundTrip(t *testing.T) {
	d := MustNew(Config{Size: 1 << 20})
	d.WriteNT([]byte("persistent across processes"), 8192)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != 1<<20 {
		t.Fatalf("size %d", d2.Size())
	}
	got := make([]byte, 27)
	d2.Read(got, 8192)
	if string(got) != "persistent across processes" {
		t.Fatalf("got %q", got)
	}
}

func TestImageLoadValidation(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage....")), Config{}); err == nil {
		t.Fatal("garbage accepted")
	}
	d := MustNew(Config{Size: 1 << 20})
	var buf bytes.Buffer
	d.Save(&buf)
	if _, err := Load(&buf, Config{Size: 2 << 20}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestImageLoadWithPersistenceTracking(t *testing.T) {
	d := MustNew(Config{Size: 1 << 20})
	d.WriteNT([]byte("durable"), 0)
	var buf bytes.Buffer
	d.Save(&buf)
	d2, err := Load(&buf, Config{TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	// The loaded image is the durable baseline: a crash keeps it.
	d2.Crash()
	got := make([]byte, 7)
	d2.Read(got, 0)
	if string(got) != "durable" {
		t.Fatal("loaded image not treated as durable")
	}
}

// TestStatsResetNotTorn checks the satellite fix: a Stats snapshot
// racing ResetStats must see either the full pre-reset counters or the
// full post-reset zeros, never a mix. The device is quiesced, so any
// partially-zero snapshot is a torn read.
func TestStatsResetNotTorn(t *testing.T) {
	d := MustNew(Config{Size: 1 << 20})
	for iter := 0; iter < 200; iter++ {
		// Populate every counter with known values, then quiesce.
		d.Write(make([]byte, 128), 0)
		d.Flush(0, 128)
		d.Read(make([]byte, 64), 0)
		d.Fence()
		want := d.Stats()
		if want.BytesWritten == 0 || want.BytesRead == 0 || want.Fences == 0 {
			t.Fatalf("setup did not populate counters: %+v", want)
		}

		var (
			start = make(chan struct{})
			got   Stats
			wg    sync.WaitGroup
		)
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			got = d.Stats()
		}()
		go func() {
			defer wg.Done()
			<-start
			d.ResetStats()
		}()
		close(start)
		wg.Wait()

		zero := Stats{}
		if got != want && got != zero {
			t.Fatalf("iter %d: torn snapshot %+v (want %+v or zero)", iter, got, want)
		}
		d.ResetStats()
	}
}

// TestStatsConcurrentWithWritersRace exercises Stats/ResetStats under
// live traffic for the race detector.
func TestStatsConcurrentWithWritersRace(t *testing.T) {
	d := MustNew(Config{Size: 1 << 20})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(off int64) {
			defer wg.Done()
			buf := make([]byte, 64)
			for {
				select {
				case <-stop:
					return
				default:
					d.Write(buf, off)
					d.Flush(off, 64)
					d.Read(buf, off)
				}
			}
		}(int64(w) * 4096)
	}
	for i := 0; i < 500; i++ {
		d.Stats()
		if i%10 == 0 {
			d.ResetStats()
		}
	}
	close(stop)
	wg.Wait()
}
