// Command hinfs-server exports a file system on emulated NVMM to many
// clients over a framed-RPC TCP protocol, with per-tenant namespace
// confinement (chroot-style subtree views), byte quotas, and weighted
// fair scheduling of service time.
//
//	hinfs-server -addr 127.0.0.1:7070 \
//	    -tenant gold:/tenants/gold:4:0 \
//	    -tenant bronze:/tenants/bronze:1:64 \
//	    -debug-addr 127.0.0.1:6070 -stats-interval 5s -slow-op 50ms
//
// Each -tenant flag declares name:root:weight:quotaMiB (quota 0 =
// unlimited). With no -tenant flags, two equal-weight tenants "alpha"
// and "beta" are created.
//
// -debug-addr serves the observability endpoints: /metrics (Prometheus
// text exposition of per-tenant counters, stage attribution, window
// latency quantiles and scheduler state — what hinfs-top polls),
// /debug/obs (full TenantStats and collector snapshots as JSON),
// /debug/vars and /debug/pprof. -stats-interval dumps the per-tenant
// table to stdout periodically; -slow-op writes a JSON line to stderr
// for every request at or over the threshold, with its wire-propagated
// trace ID and per-stage latency breakdown. SIGINT/SIGTERM shuts the
// server down cleanly and dumps final statistics.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hinfs/internal/harness"
	"hinfs/internal/obs"
	"hinfs/internal/server"
)

// tenantFlags collects repeatable -tenant name:root:weight:quotaMiB specs.
type tenantFlags map[string]server.TenantConfig

func (t tenantFlags) String() string { return fmt.Sprint(map[string]server.TenantConfig(t)) }

func (t tenantFlags) Set(spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		return fmt.Errorf("want name:root:weight:quotaMiB, got %q", spec)
	}
	name, root := parts[0], parts[1]
	if name == "" || root == "" {
		return fmt.Errorf("empty tenant name or root in %q", spec)
	}
	weight, err := strconv.Atoi(parts[2])
	if err != nil || weight <= 0 {
		return fmt.Errorf("bad weight in %q", spec)
	}
	quota, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil || quota < 0 {
		return fmt.Errorf("bad quotaMiB in %q", spec)
	}
	if _, dup := t[name]; dup {
		return fmt.Errorf("duplicate tenant %q", name)
	}
	t[name] = server.TenantConfig{Root: root, Weight: weight, QuotaBytes: quota << 20}
	return nil
}

func main() { os.Exit(run()) }

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		system    = flag.String("system", "hinfs", "backing system: hinfs, pmfs, ext4-dax, ext2-nvmmbd, ext4-nvmmbd")
		device    = flag.Int64("device", 256, "emulated device size (MiB)")
		latency   = flag.Duration("latency", 200*time.Nanosecond, "NVMM write latency per cacheline")
		workers   = flag.Int("workers", 2, "concurrently executing requests (fair-scheduler service slots)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/obs, /debug/vars and /debug/pprof on this address")
		statsIvl  = flag.Duration("stats-interval", 0, "dump the per-tenant stats table to stdout at this interval (0 = only at shutdown)")
		slowOp    = flag.Duration("slow-op", 0, "log a JSON line to stderr for every request at or over this latency (0 = off)")
		flightBlk = flag.Int64("flight", 32, "NVMM flight-recorder region size in 4 KiB blocks; one record per dispatched request, crash-survivable (0 = off; hinfs/pmfs only)")
		tenants   = tenantFlags{}
	)
	flag.Var(tenants, "tenant", "tenant spec name:root:weight:quotaMiB (repeatable)")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "hinfs-server:", err)
		return 1
	}
	if len(tenants) == 0 {
		tenants["alpha"] = server.TenantConfig{Root: "/tenants/alpha", Weight: 1}
		tenants["beta"] = server.TenantConfig{Root: "/tenants/beta", Weight: 1}
	}

	inst, err := harness.NewInstance(harness.System(*system), harness.Config{
		DeviceSize:   *device << 20,
		WriteLatency: *latency,
		FlightBlocks: *flightBlk,
		// The debug endpoint implies collection: the instance's collector
		// (op-class and decision-path histograms) backs /debug/obs.
		Observe: *debugAddr != "",
	})
	if err != nil {
		return fail(err)
	}
	defer inst.Close()
	if *flightBlk > 0 && inst.Flight == nil {
		fmt.Fprintf(os.Stderr, "hinfs-server: %s persists no flight ring; recording disabled\n", *system)
	}

	srv, err := server.New(server.Config{
		FS:              inst.FS,
		Tenants:         tenants,
		Workers:         *workers,
		SlowOpThreshold: *slowOp,
		Flight:          inst.Flight,
	})
	if err != nil {
		return fail(err)
	}
	if *debugAddr != "" {
		obs.Default.Register("server", func() any { return srv.Stats() })
		obs.Default.RegisterProm("server", srv.WriteProm)
		dbg, err := obs.ServeDebug(*debugAddr, obs.Default)
		if err != nil {
			return fail(err)
		}
		defer dbg.Close()
		fmt.Printf("hinfs-server: metrics on http://%s/metrics\n", dbg.Addr)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("hinfs-server: %s on %s, %d tenants, %d workers\n",
		*system, ln.Addr(), len(tenants), *workers)
	for name, tc := range tenants {
		quota := "unlimited"
		if tc.QuotaBytes > 0 {
			quota = fmt.Sprintf("%d MiB", tc.QuotaBytes>>20)
		}
		fmt.Printf("hinfs-server:   tenant %s root=%s weight=%d quota=%s\n",
			name, tc.Root, tc.Weight, quota)
	}
	if inst.Flight != nil {
		fmt.Printf("hinfs-server:   flight ring %d slots (%d blocks, crash-survivable)\n",
			inst.Flight.Slots(), *flightBlk)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	var tick <-chan time.Time
	if *statsIvl > 0 {
		t := time.NewTicker(*statsIvl)
		defer t.Stop()
		tick = t.C
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
loop:
	for {
		select {
		case sig := <-sigc:
			fmt.Printf("hinfs-server: %v, shutting down\n", sig)
			break loop
		case <-tick:
			dumpStats(srv)
		case err := <-errc:
			if err != nil {
				return fail(err)
			}
			break loop
		}
	}
	if err := srv.Close(); err != nil {
		return fail(err)
	}
	dumpStats(srv)
	return 0
}

func dumpStats(srv *server.Server) {
	fmt.Println("tenant          ops   MB-read  MB-written  used-MB  quota-rej  svc-ms  queue%  flush%  qdepth  write-p99(us)")
	for _, ts := range srv.Stats() {
		_, _, wp99, _ := ts.WriteLat.Percentiles()
		measured := ts.MeasuredNS()
		share := func(stage string) float64 {
			if measured <= 0 {
				return 0
			}
			return 100 * float64(ts.StageNS[stage]) / float64(measured)
		}
		fmt.Printf("%-12s  %6d  %8.1f  %10.1f  %7.1f  %9d  %6d  %5.1f%%  %5.1f%%  %6d  %13.1f\n",
			ts.Name, ts.Ops,
			float64(ts.BytesRead)/(1<<20), float64(ts.BytesWritten)/(1<<20),
			float64(ts.UsedBytes)/(1<<20), ts.QuotaRejects,
			ts.ServiceNS/1e6, share("queue"), share("flush"),
			ts.Sched.QueueDepth, float64(wp99)/1e3)
	}
}
