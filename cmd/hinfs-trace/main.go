// Command hinfs-trace generates and replays system-call-level I/O traces
// (paper §5.3).
//
//	hinfs-trace -gen usr0 -ops 20000 > usr0.trace    # synthesize to stdout
//	hinfs-trace -replay usr0.trace -system hinfs     # replay a trace file
//	hinfs-trace -replay - -system pmfs < usr0.trace  # replay from stdin
//	hinfs-trace -gen facebook -replay - -system hinfs-wb
//
// Replay reports the per-class time breakdown (read/write/unlink/fsync)
// that the paper's Figure 12 is built from, plus per-class latency
// percentiles (p50/p90/p99/p999) from the same run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hinfs/internal/harness"
	"hinfs/internal/trace"
)

func main() {
	var (
		gen    = flag.String("gen", "", "synthesize a trace: usr0, usr1, lasr, facebook")
		ops    = flag.Int("ops", 20000, "ops for -gen")
		replay = flag.String("replay", "", "trace file to replay ('-' = stdin; with -gen, replay the generated trace)")
		system = flag.String("system", "hinfs", "system under test: hinfs, hinfs-nclfw, hinfs-wb, pmfs, ext4-dax, ext2-nvmmbd, ext4-nvmmbd")
		device = flag.Int64("device", 256, "device size (MiB)")
		scale  = flag.Float64("timescale", 16, "delay time scale")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "hinfs-trace:", err)
		os.Exit(1)
	}

	var tr *trace.Trace
	if *gen != "" {
		var err error
		tr, err = trace.ByName(*gen, *ops)
		if err != nil {
			fail(err)
		}
		if *replay == "" {
			if err := tr.Write(os.Stdout); err != nil {
				fail(err)
			}
			return
		}
	}
	if *replay == "" {
		fmt.Fprintln(os.Stderr, "hinfs-trace: nothing to do (use -gen and/or -replay)")
		os.Exit(2)
	}
	if tr == nil {
		in := os.Stdin
		if *replay != "-" {
			f, err := os.Open(*replay)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			in = f
		}
		var err error
		tr, err = trace.Parse(in)
		if err != nil {
			fail(err)
		}
	}

	cfg := harness.Config{DeviceSize: *device << 20, TimeScale: *scale}
	inst, err := harness.NewInstance(harness.System(*system), cfg)
	if err != nil {
		fail(err)
	}
	defer inst.Close()
	if err := tr.Prepare(inst.FS); err != nil {
		fail(err)
	}
	res, err := tr.Replay(inst.FS)
	if err != nil {
		fail(err)
	}
	total := res.Total()
	fmt.Printf("trace %s on %s: %d ops in %v\n", tr.Name, *system, len(tr.Ops), total.Round(time.Millisecond))
	for _, k := range []trace.Kind{trace.Read, trace.Write, trace.Unlink, trace.Fsync} {
		d := res.TimeFor(k)
		p := 0.0
		if total > 0 {
			p = 100 * float64(d) / float64(total)
		}
		fmt.Printf("  %-6s %8d ops  %10v  %5.1f%%", k, res.Counts[k], d.Round(time.Microsecond), p)
		if h := res.Lat[k]; h.Count > 0 {
			p50, p90, p99, p999 := h.Percentiles()
			fmt.Printf("  p50=%s p90=%s p99=%s p999=%s", us(p50), us(p90), us(p99), us(p999))
		}
		fmt.Println()
	}
	fmt.Printf("  read %d B, wrote %d B, fsync bytes %d (%.1f%%)\n",
		res.BytesRead, res.BytesWritten, res.FsyncBytes,
		100*float64(res.FsyncBytes)/float64(max64(res.BytesWritten, 1)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// us renders nanoseconds as microseconds.
func us(ns int64) string {
	return fmt.Sprintf("%.1fus", float64(ns)/1e3)
}
