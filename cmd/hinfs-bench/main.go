// Command hinfs-bench regenerates the paper's evaluation figures on the
// emulated NVMM testbed.
//
// Usage:
//
//	hinfs-bench -fig 7            # regenerate Figure 7
//	hinfs-bench -fig all          # every figure
//	hinfs-bench -fig 9 -quick     # trimmed sweep
//	hinfs-bench -fig 8 -ops 500 -latency 400ns -device 512
//	hinfs-bench -fig pool         # DRAM buffer lock-scaling report
//	hinfs-bench -fig metascale    # metadata hot-path scaling report
//	hinfs-bench -fig 8 -shards 1  # pin the buffer to a single shard
//	hinfs-bench -fig latency      # per-op latency percentiles + path mix
//	hinfs-bench -fig 7 -debug-addr :6060   # live expvar/pprof while running
//
// Figures 3-5 are design diagrams with no measurements and are not
// regenerated.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hinfs/internal/harness"
	"hinfs/internal/obs"
)

func main() {
	var (
		figFlag   = flag.String("fig", "all", "figure to regenerate: 1,2,6,7,8,9,10,11,12,13 or 'all'")
		quick     = flag.Bool("quick", false, "trim sweeps to fewer points")
		ops       = flag.Int("ops", 0, "override per-thread op count (0 = per-figure default)")
		threads   = flag.Int("threads", 0, "override thread count (0 = per-figure default)")
		latency   = flag.Duration("latency", 200*time.Nanosecond, "NVMM write latency per cacheline")
		bandwidth = flag.Int64("bandwidth", 1<<30, "NVMM write bandwidth (bytes/s)")
		device    = flag.Int64("device", 256, "emulated device size (MiB)")
		buffer    = flag.Int("buffer", 0, "HiNFS DRAM buffer in 4 KiB blocks (0 = calibrated default)")
		shards    = flag.Int("shards", 0, "DRAM buffer shards (0 = one per GOMAXPROCS, capped by pool size)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/vars, /debug/obs and /debug/pprof on this address while running")
	)
	flag.Parse()

	cfg := harness.Config{
		DeviceSize:     *device << 20,
		WriteLatency:   *latency,
		WriteBandwidth: *bandwidth,
		BufferBlocks:   *buffer,
		BufferShards:   *shards,
	}
	if *debugAddr != "" {
		// Live metrics imply collection: every instance gets a collector
		// registered in obs.Default, which the debug server serves.
		cfg.Observe = true
		srv, err := obs.ServeDebug(*debugAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hinfs-bench: debug server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "hinfs-bench: debug server on http://%s/debug/obs\n", srv.Addr)
	}
	opts := harness.Opts{Ops: *ops, Threads: *threads, Quick: *quick}

	type figFn func(harness.Config, harness.Opts) (*harness.Figure, error)
	figures := map[string]figFn{
		"1":       harness.Figure1,
		"2":       harness.Figure2,
		"6":       harness.Figure6,
		"7":       harness.Figure7,
		"8":       harness.Figure8,
		"9":       harness.Figure9,
		"10":      harness.Figure10,
		"11":      harness.Figure11,
		"12":      harness.Figure12,
		"13":      harness.Figure13,
		"pool":      harness.PoolScaling,
		"metascale": harness.MetadataScaling,
		"latency":   harness.FigureLatency,
	}
	order := []string{"1", "2", "6", "7", "8", "9", "10", "11", "12", "13", "pool", "metascale", "latency"}

	if *figFlag == "list" {
		fmt.Println("available figures:", order)
		fmt.Println("figures 3-5 are design diagrams with no measurements")
		fmt.Println("'pool' is the DRAM buffer lock-scaling report (not a paper figure)")
		fmt.Println("'metascale' is the PMFS metadata hot-path scaling report (not a paper figure)")
		fmt.Println("'latency' is the per-op-class percentile + path-mix report (not a paper figure)")
		return
	}

	run := func(name string) {
		fn, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "hinfs-bench: unknown figure %q (valid: %s, all, list)\n",
				name, strings.Join(order, ", "))
			os.Exit(1)
		}
		start := time.Now()
		fig, err := fn(cfg, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hinfs-bench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fig.Table.Fprint(os.Stdout)
		fmt.Printf("  (regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *figFlag == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*figFlag)
}
