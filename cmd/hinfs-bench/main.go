// Command hinfs-bench regenerates the paper's evaluation figures on the
// emulated NVMM testbed.
//
// Usage:
//
//	hinfs-bench -fig 7            # regenerate Figure 7
//	hinfs-bench -fig all          # every figure
//	hinfs-bench -fig 9 -quick     # trimmed sweep
//	hinfs-bench -fig 8 -ops 500 -latency 400ns -device 512
//	hinfs-bench -fig pool         # DRAM buffer lock-scaling report
//	hinfs-bench -fig metascale    # metadata hot-path scaling report
//	hinfs-bench -fig 8 -shards 1  # pin the buffer to a single shard
//	hinfs-bench -fig latency      # per-op latency percentiles + path mix
//	hinfs-bench -fig amplification  # copy attribution + write amplification
//	hinfs-bench -fig 7 -json out.json      # machine-readable results
//	hinfs-bench -fig all -seed 42 -json out.json  # reseeded op streams
//	hinfs-bench -fig 7 -debug-addr :6060   # live expvar/pprof while running
//
// -json writes the canonical benchmark document (schema hinfs-bench/v1):
// an environment fingerprint plus every regenerated figure's raw series
// and per-point resource profiles. Feed two such documents to
// hinfs-benchdiff to gate regressions.
//
// Figures 3-5 are design diagrams with no measurements and are not
// regenerated.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hinfs/internal/harness"
	"hinfs/internal/obs"
	"hinfs/internal/workload"
)

func main() {
	var (
		figFlag   = flag.String("fig", "all", "figure(s) to regenerate: 1,2,6,7,8,9,10,11,12,13, a named report, a comma-separated list, or 'all'")
		quick     = flag.Bool("quick", false, "trim sweeps to fewer points")
		ops       = flag.Int("ops", 0, "override per-thread op count (0 = per-figure default)")
		threads   = flag.Int("threads", 0, "override thread count (0 = per-figure default)")
		latency   = flag.Duration("latency", 200*time.Nanosecond, "NVMM write latency per cacheline")
		bandwidth = flag.Int64("bandwidth", 1<<30, "NVMM write bandwidth (bytes/s)")
		device    = flag.Int64("device", 256, "emulated device size (MiB)")
		buffer    = flag.Int("buffer", 0, "HiNFS DRAM buffer in 4 KiB blocks (0 = calibrated default)")
		shards    = flag.Int("shards", 0, "DRAM buffer shards (0 = one per GOMAXPROCS, capped by pool size)")
		seed      = flag.Uint64("seed", 0, "base workload seed mixed into every op stream (0 = fixed per-workload defaults)")
		jsonPath  = flag.String("json", "", "write the machine-readable benchmark document to this path")
		debugAddr = flag.String("debug-addr", "", "serve /debug/vars, /debug/obs and /debug/pprof on this address while running")
	)
	flag.Parse()

	if err := validateFlags(*latency, *bandwidth, *device, *ops, *threads, *buffer, *shards); err != nil {
		fmt.Fprintf(os.Stderr, "hinfs-bench: %v\n", err)
		os.Exit(1)
	}
	workload.SetBaseSeed(*seed)

	cfg := harness.Config{
		DeviceSize:     *device << 20,
		WriteLatency:   *latency,
		WriteBandwidth: *bandwidth,
		BufferBlocks:   *buffer,
		BufferShards:   *shards,
	}
	if *jsonPath != "" {
		// Profiles carry op-class latencies and copy attribution, which
		// only exist when instances collect them.
		cfg.Observe = true
	}
	if *debugAddr != "" {
		// Live metrics imply collection: every instance gets a collector
		// registered in obs.Default, which the debug server serves.
		cfg.Observe = true
		srv, err := obs.ServeDebug(*debugAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hinfs-bench: debug server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "hinfs-bench: debug server on http://%s/debug/obs\n", srv.Addr)
	}
	opts := harness.Opts{Ops: *ops, Threads: *threads, Quick: *quick}

	type figFn func(harness.Config, harness.Opts) (*harness.Figure, error)
	figures := map[string]figFn{
		"1":             harness.Figure1,
		"2":             harness.Figure2,
		"6":             harness.Figure6,
		"7":             harness.Figure7,
		"8":             harness.Figure8,
		"9":             harness.Figure9,
		"10":            harness.Figure10,
		"11":            harness.Figure11,
		"12":            harness.Figure12,
		"13":            harness.Figure13,
		"pool":          harness.PoolScaling,
		"metascale":     harness.MetadataScaling,
		"latency":       harness.FigureLatency,
		"amplification": harness.FigureAmplification,
		"tenants":       harness.FigureTenants,
		"obsoverhead":   harness.FigureObsOverhead,
		"batch":         harness.FigureBatch,
		"chaostraffic":  harness.FigureChaosTraffic,
	}
	order := []string{"1", "2", "6", "7", "8", "9", "10", "11", "12", "13", "pool", "metascale", "latency", "amplification", "tenants", "obsoverhead", "batch", "chaostraffic"}

	if *figFlag == "list" {
		fmt.Println("available figures:", order)
		fmt.Println("figures 3-5 are design diagrams with no measurements")
		fmt.Println("'pool' is the DRAM buffer lock-scaling report (not a paper figure)")
		fmt.Println("'metascale' is the PMFS metadata hot-path scaling report (not a paper figure)")
		fmt.Println("'latency' is the per-op-class percentile + path-mix report (not a paper figure)")
		fmt.Println("'amplification' is the §2 copy-attribution + write-amplification report (not a paper figure)")
		fmt.Println("'tenants' is the multi-tenant server fairness report (not a paper figure)")
		fmt.Println("'obsoverhead' is the observability on/off throughput gate (not a paper figure)")
		fmt.Println("'batch' is the pipelined-submission throughput sweep with its 2x speedup gate (not a paper figure)")
		fmt.Println("'chaostraffic' is the crash-under-load flight-forensics report with its zero-violation gate (not a paper figure)")
		return
	}

	doc := harness.NewBenchDoc(cfg, opts)
	run := func(name string) {
		fn, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "hinfs-bench: unknown figure %q (valid: %s, all, list)\n",
				name, strings.Join(order, ", "))
			os.Exit(1)
		}
		start := time.Now()
		fig, err := fn(cfg, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hinfs-bench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fig.Table.Fprint(os.Stdout)
		for i := range fig.Extra {
			fig.Extra[i].Fprint(os.Stdout)
		}
		fmt.Printf("  (regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		doc.Add(name, fig)
	}

	if *figFlag == "all" {
		for _, name := range order {
			run(name)
		}
	} else {
		// Comma-separated lists run several figures in one invocation
		// (and one JSON document), e.g. -fig 7,batch for the CI gate.
		for _, name := range strings.Split(*figFlag, ",") {
			if name = strings.TrimSpace(name); name != "" {
				run(name)
			}
		}
	}
	if *jsonPath != "" {
		if err := doc.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "hinfs-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hinfs-bench: wrote %s (%d figures, schema %s)\n",
			*jsonPath, len(doc.Figures), harness.SchemaVersion)
	}
}

// validateFlags rejects parameter values the emulator cannot run with,
// before any instance mounts. 0 stays valid for -ops/-threads/-buffer/
// -shards ("use the per-figure or calibrated default"); the physical
// device knobs must be positive.
func validateFlags(latency time.Duration, bandwidth, device int64, ops, threads, buffer, shards int) error {
	switch {
	case latency <= 0:
		return fmt.Errorf("invalid -latency %v: must be > 0", latency)
	case bandwidth <= 0:
		return fmt.Errorf("invalid -bandwidth %d: must be > 0 bytes/s", bandwidth)
	case device <= 0:
		return fmt.Errorf("invalid -device %d: must be > 0 MiB", device)
	case ops < 0:
		return fmt.Errorf("invalid -ops %d: must be >= 0 (0 = per-figure default)", ops)
	case threads < 0:
		return fmt.Errorf("invalid -threads %d: must be >= 0 (0 = per-figure default)", threads)
	case buffer < 0:
		return fmt.Errorf("invalid -buffer %d: must be >= 0 (0 = calibrated default)", buffer)
	case shards < 0:
		return fmt.Errorf("invalid -shards %d: must be >= 0 (0 = auto)", shards)
	}
	return nil
}
