// Command hinfs-top is a live per-tenant view of a running hinfs-server:
// it polls the server's Prometheus exposition endpoint (-debug-addr on
// hinfs-server) and renders per-tenant throughput, stage-attributed
// latency shares and recent-window latency quantiles, refreshed in
// place like top(1).
//
//	hinfs-top -addr 127.0.0.1:6070
//	hinfs-top -addr 127.0.0.1:6070 -interval 2s
//	hinfs-top -addr 127.0.0.1:6070 -n 1 -plain   # one-shot, no ANSI
//
// Rates (ops/s, MB/s) and stage shares are computed from deltas between
// consecutive scrapes; quantiles are the server's rotating-window gauges
// and need no history. The first frame therefore shows cumulative stage
// shares and no rates. The header reports the windows' coverage
// ("quantiles over last 8s") from hinfs_window_coverage_ns, and a footer
// reports the NVMM flight ring's append count when the server records
// one.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:6070", "hinfs-server debug address (host:port) or full /metrics URL")
		interval = flag.Duration("interval", time.Second, "poll interval")
		count    = flag.Int("n", 0, "number of frames to render (0 = until interrupted)")
		plain    = flag.Bool("plain", false, "append frames instead of redrawing in place (for logs and pipes)")
	)
	flag.Parse()

	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url + "/metrics"
	}

	var prev scrape
	for frame := 0; *count == 0 || frame < *count; frame++ {
		if frame > 0 {
			time.Sleep(*interval)
		}
		cur, err := poll(url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hinfs-top:", err)
			return 1
		}
		if !*plain {
			fmt.Print("\x1b[2J\x1b[H") // clear and home
		}
		render(os.Stdout, url, cur, prev)
		prev = cur
	}
	return 0
}

// sample is one exposition line: a metric name, its label set and value.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// scrape is one poll of the endpoint, indexed for the view.
type scrape struct {
	at      time.Time
	samples []sample
}

// get returns the value of the first sample matching name and the given
// label key/value pairs.
func (s *scrape) get(name string, kv ...string) (float64, bool) {
	for i := range s.samples {
		if s.samples[i].name != name {
			continue
		}
		ok := true
		for j := 0; j+1 < len(kv); j += 2 {
			if s.samples[i].labels[kv[j]] != kv[j+1] {
				ok = false
				break
			}
		}
		if ok {
			return s.samples[i].value, true
		}
	}
	return 0, false
}

// tenants lists the tenant label values seen in the scrape, sorted.
func (s *scrape) tenants() []string {
	seen := map[string]bool{}
	for i := range s.samples {
		if t := s.samples[i].labels["tenant"]; t != "" && !seen[t] {
			seen[t] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func poll(url string) (scrape, error) {
	resp, err := http.Get(url)
	if err != nil {
		return scrape{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return scrape{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return scrape{}, fmt.Errorf("%s: %s", url, resp.Status)
	}
	s := scrape{at: time.Now()}
	for _, line := range strings.Split(string(body), "\n") {
		if smp, ok := parseLine(line); ok {
			s.samples = append(s.samples, smp)
		}
	}
	return s, nil
}

// parseLine parses one Prometheus text-format sample line. Comment,
// blank and malformed lines report ok=false.
func parseLine(line string) (sample, bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return sample{}, false
	}
	smp := sample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		smp.name = rest[:i]
		j := strings.IndexByte(rest[i:], '}')
		if j < 0 {
			return sample{}, false
		}
		for _, pair := range strings.Split(rest[i+1:i+j], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				continue
			}
			smp.labels[k] = strings.Trim(v, `"`)
		}
		rest = strings.TrimSpace(rest[i+j+1:])
	} else {
		k := strings.IndexAny(rest, " \t")
		if k < 0 {
			return sample{}, false
		}
		smp.name = rest[:k]
		rest = strings.TrimSpace(rest[k:])
	}
	// Drop a trailing timestamp if present; the value is the first field.
	if k := strings.IndexAny(rest, " \t"); k >= 0 {
		rest = rest[:k]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return sample{}, false
	}
	smp.value = v
	return smp, true
}

// delta returns cur-prev for a cumulative metric, falling back to the
// cumulative value itself on the first frame (prev empty).
func delta(cur, prev scrape, name string, kv ...string) float64 {
	c, ok := cur.get(name, kv...)
	if !ok {
		return 0
	}
	if p, ok := prev.get(name, kv...); ok && c >= p {
		return c - p
	}
	return c
}

var stageCols = []string{"queue", "quota", "lock", "stall", "flush"}

func render(w io.Writer, url string, cur, prev scrape) {
	dt := 0.0
	if !prev.at.IsZero() {
		dt = cur.at.Sub(prev.at).Seconds()
	}
	fmt.Fprintf(w, "hinfs-top  %s  %s", url, cur.at.Format("15:04:05"))
	// Window coverage: how far back the rotating quantile windows reach,
	// so the p50/p99 columns read as "over the last Ns", not "ever".
	if cov, ok := cur.get("hinfs_window_coverage_ns"); ok && cov > 0 {
		fmt.Fprintf(w, "  quantiles over last %.0fs", cov/1e9)
	}
	fmt.Fprint(w, "\n\n")
	fmt.Fprintf(w, "%-10s %8s %8s %8s %6s", "tenant", "ops/s", "rMB/s", "wMB/s", "depth")
	for _, st := range stageCols {
		fmt.Fprintf(w, " %6s", st)
	}
	fmt.Fprintf(w, " %6s %10s %10s\n", "other", "p50(us)", "p99(us)")
	for _, tn := range cur.tenants() {
		ops := delta(cur, prev, "hinfs_tenant_ops_total", "tenant", tn)
		rB := delta(cur, prev, "hinfs_tenant_bytes_total", "tenant", tn, "dir", "read")
		wB := delta(cur, prev, "hinfs_tenant_bytes_total", "tenant", tn, "dir", "write")
		depth, _ := cur.get("hinfs_sched_queue_depth", "tenant", tn)
		measured := delta(cur, prev, "hinfs_tenant_measured_ns_total", "tenant", tn)
		if dt > 0 {
			ops, rB, wB = ops/dt, rB/dt, wB/dt
		}
		fmt.Fprintf(w, "%-10s %8.0f %8.2f %8.2f %6.0f", tn, ops, rB/(1<<20), wB/(1<<20), depth)
		attributed := 0.0
		for _, st := range stageCols {
			v := delta(cur, prev, "hinfs_tenant_stage_ns_total", "tenant", tn, "stage", st)
			attributed += v
			fmt.Fprintf(w, " %5.1f%%", 100*frac(v, measured))
		}
		fmt.Fprintf(w, " %5.1f%%", 100*frac(measured-attributed, measured))
		// Window quantiles: prefer the write class, fall back to read then
		// meta so an idle class doesn't blank the column.
		var p50, p99 float64
		for _, class := range []string{"write", "read", "meta"} {
			if v, ok := cur.get("hinfs_tenant_window_latency_ns", "tenant", tn, "class", class, "quantile", "0.5"); ok {
				p50 = v
				p99, _ = cur.get("hinfs_tenant_window_latency_ns", "tenant", tn, "class", class, "quantile", "0.99")
				break
			}
		}
		fmt.Fprintf(w, " %10.1f %10.1f\n", p50/1e3, p99/1e3)
	}
	if slow, ok := cur.get("hinfs_slow_ops_total"); ok && slow > 0 {
		fmt.Fprintf(w, "\nslow ops logged: %.0f (see server stderr for trace IDs)\n", slow)
	}
	if seq, ok := cur.get("hinfs_flight_seq"); ok {
		slots, _ := cur.get("hinfs_flight_slots")
		fmt.Fprintf(w, "\nflight ring: %.0f records appended (%.0f slots, crash-survivable)\n", seq, slots)
	}
}

func frac(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return part / whole
}
