// Command hinfs-shell is an interactive shell over a HiNFS instance on an
// emulated NVMM device — handy for poking at the file system and watching
// the DRAM write buffer and Buffer Benefit Model at work.
//
//	$ go run ./cmd/hinfs-shell
//	hinfs> help
//	hinfs> write /a.txt hello world
//	hinfs> stats
//
// Commands: ls, mkdir, rmdir, touch, write, append, cat, rm, mv, stat,
// truncate, fsync, sync, fsck, crash, recover, stats, help, quit.
//
// The device tracks cacheline persistence, so `crash [seed]` can simulate
// a power failure in place — unflushed stores are discarded (or a seeded
// pseudo-random subset survives, imitating torn cache evictions) — and
// remount through journal recovery; `fsck` then verifies the result.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hinfs"
	"hinfs/internal/obs"
)

// session is the REPL's mutable state: crash/recover swap the mounted
// file-system instance while the device lives on.
type session struct {
	fs     *hinfs.FS
	dev    *hinfs.Device
	col    *obs.Collector
	buffer int
}

func main() { os.Exit(shellMain()) }

func shellMain() int {
	var (
		device    = flag.Int64("device", 64, "device size (MiB)")
		buffer    = flag.Int("buffer", 2048, "DRAM buffer (4 KiB blocks)")
		latency   = flag.Duration("latency", 200*time.Nanosecond, "NVMM write latency")
		image     = flag.String("image", "", "device image file: loaded if present, saved on quit")
		debugAddr = flag.String("debug-addr", "", "serve /debug/vars, /debug/obs and /debug/pprof on this address")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "hinfs-shell:", err)
		return 1
	}
	var col *obs.Collector
	if *debugAddr != "" {
		col = obs.New()
		obs.Default.RegisterCollector("shell", col)
		srv, err := obs.ServeDebug(*debugAddr, obs.Default)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "hinfs-shell: debug server on http://%s/debug/obs\n", srv.Addr)
	}
	cfg := hinfs.DeviceConfig{
		Size:             *device << 20,
		WriteLatency:     *latency,
		WriteBandwidth:   1 << 30,
		TrackPersistence: true, // lets the crash command work
	}
	var dev *hinfs.Device
	var fs *hinfs.FS
	if *image != "" {
		if in, err := os.Open(*image); err == nil {
			cfg.Size = 0 // take the image's size
			dev, err = hinfs.LoadDevice(in, cfg)
			in.Close()
			if err != nil {
				return fail(err)
			}
			fs, err = hinfs.Mount(dev, hinfs.Options{BufferBlocks: *buffer, Obs: col})
			if err != nil {
				return fail(err)
			}
			fmt.Printf("hinfs-shell: loaded image %s"+"\n", *image)
		}
	}
	if fs == nil {
		var err error
		dev, err = hinfs.NewDevice(cfg)
		if err != nil {
			return fail(err)
		}
		fs, err = hinfs.Mkfs(dev, hinfs.Options{BufferBlocks: *buffer, Obs: col})
		if err != nil {
			return fail(err)
		}
	}
	s := &session{fs: fs, dev: dev, col: col, buffer: *buffer}

	fmt.Printf("hinfs-shell: %d MiB NVMM, %d-block DRAM buffer. Type 'help'.\n", *device, *buffer)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("hinfs> ")
		if !sc.Scan() {
			fmt.Println()
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		args := strings.Fields(line)
		if err := run(s, args); err != nil {
			if err == errQuit {
				break
			}
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}

	s.fs.Unmount()
	if *image != "" {
		if err := saveImage(s.dev, *image); err != nil {
			fmt.Fprintln(os.Stderr, "hinfs-shell: save:", err)
			return 1
		}
		fmt.Printf("saved image to %s"+"\n", *image)
	}
	return 0
}

func saveImage(dev *hinfs.Device, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dev.Save(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

var errQuit = fmt.Errorf("quit")

// remount runs journal recovery on the session's device and swaps the
// mounted instance. The old instance must already be abandoned.
func (s *session) remount() error {
	fs, rolled, err := hinfs.MountRecover(s.dev, hinfs.Options{BufferBlocks: s.buffer, Obs: s.col})
	if err != nil {
		return fmt.Errorf("recovery failed: %v", err)
	}
	s.fs = fs
	fmt.Printf("recovered: %d journal transaction(s) rolled back\n", rolled)
	return nil
}

func run(s *session, args []string) error {
	fs, dev, col := s.fs, s.dev, s.col
	cmd, rest := args[0], args[1:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("%s: need %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "quit", "exit":
		return errQuit
	case "help":
		fmt.Println(`ls [dir]            list directory
mkdir <dir>         create directory
rmdir <dir>         remove empty directory
touch <file>        create empty file
write <file> <txt>  replace file contents
append <file> <txt> append to file
cat <file>          print file contents
rm <file>           unlink file
mv <a> <b>          rename
stat <path>         file info
truncate <file> <n> resize file
fsync <file>        persist file to NVMM
sync                flush the whole DRAM buffer
fsck                check on-device consistency
crash [seed]        simulate power failure and remount with recovery
                    (seed keeps a pseudo-random subset of unflushed
                    cachelines; default 0 drops them all)
recover             remount through journal recovery (no crash)
stats               device/buffer/model statistics
lat                 decision-path latency percentiles (needs -debug-addr)
quit                exit`)
	case "ls":
		dir := "/"
		if len(rest) > 0 {
			dir = rest[0]
		}
		ents, err := fs.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			kind := "f"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %s\n", kind, e.Name)
		}
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return fs.Mkdir(rest[0])
	case "rmdir":
		if err := need(1); err != nil {
			return err
		}
		return fs.Rmdir(rest[0])
	case "touch":
		if err := need(1); err != nil {
			return err
		}
		f, err := fs.Open(rest[0], hinfs.OCreate|hinfs.ORdwr)
		if err != nil {
			return err
		}
		return f.Close()
	case "write", "append":
		if err := need(2); err != nil {
			return err
		}
		flags := hinfs.OCreate | hinfs.ORdwr
		if cmd == "write" {
			flags |= hinfs.OTrunc
		} else {
			flags |= hinfs.OAppend
		}
		f, err := fs.Open(rest[0], flags)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.WriteAt([]byte(strings.Join(rest[1:], " ")+"\n"), 0)
		return err
	case "cat":
		if err := need(1); err != nil {
			return err
		}
		f, err := fs.Open(rest[0], hinfs.ORdonly)
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, f.Size())
		if _, err := f.ReadAt(buf, 0); err != nil {
			return err
		}
		os.Stdout.Write(buf)
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return fs.Unlink(rest[0])
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return fs.Rename(rest[0], rest[1])
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		fi, err := fs.Stat(rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("%s: size=%d dir=%v blocks=%d\n", fi.Name, fi.Size, fi.IsDir, fi.Blocks)
	case "truncate":
		if err := need(2); err != nil {
			return err
		}
		n, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return err
		}
		f, err := fs.Open(rest[0], hinfs.ORdwr)
		if err != nil {
			return err
		}
		defer f.Close()
		return f.Truncate(n)
	case "fsync":
		if err := need(1); err != nil {
			return err
		}
		f, err := fs.Open(rest[0], hinfs.ORdwr)
		if err != nil {
			return err
		}
		defer f.Close()
		return f.Fsync()
	case "sync":
		return fs.Sync()
	case "fsck":
		if err := fs.Sync(); err != nil {
			return err
		}
		if errs := fs.Fsck(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Println("fsck:", e)
			}
			return fmt.Errorf("%d problem(s) found", len(errs))
		}
		fmt.Println("clean")
	case "crash":
		var seed uint64
		if len(rest) > 0 {
			var err error
			if seed, err = strconv.ParseUint(rest[0], 0, 64); err != nil {
				return fmt.Errorf("crash: bad seed %q: %v", rest[0], err)
			}
		}
		// Power failure: the DRAM buffer vanishes without writeback and
		// every store the CPU cache had not flushed is lost (or, with a
		// nonzero seed, a pseudo-random subset survives as if evicted
		// just before the cut).
		fs.Abandon()
		pending := dev.PendingLines()
		dev.CrashPartial(seed)
		fmt.Printf("crash: power cut with %d unflushed cacheline(s), keep-seed %#x\n", pending, seed)
		return s.remount()
	case "recover":
		fs.Abandon()
		return s.remount()
	case "stats":
		ds := dev.Stats()
		ps := fs.Pool().Stats()
		acc, total := fs.Model().Accuracy()
		fmt.Printf("device:  read=%dB written=%dB flushed=%dB flushes=%d\n",
			ds.BytesRead, ds.BytesWritten, ds.BytesFlushed, ds.Flushes)
		fmt.Printf("buffer:  hits=%d misses=%d evictions=%d drops=%d dirty=%d free=%d/%d\n",
			ps.WriteHits, ps.WriteMisses, ps.Evictions, ps.Drops,
			fs.Pool().DirtyBlocks(), fs.Pool().FreeBlocks(), fs.Pool().Capacity())
		fmt.Printf("clfw:    lines fetched=%d flushed=%d\n", ps.LinesFetched, ps.LinesFlushed)
		fmt.Printf("model:   accuracy=%d/%d ghost=%d\n", acc, total, fs.Model().GhostLen())
	case "lat":
		if col == nil {
			return fmt.Errorf("lat: no collector (start with -debug-addr)")
		}
		snap := col.Snapshot()
		for _, p := range obs.Paths() {
			h := snap.Path(p)
			if h.Count == 0 {
				continue
			}
			p50, p90, p99, p999 := h.Percentiles()
			fmt.Printf("%-16s n=%-6d p50=%-8d p90=%-8d p99=%-8d p999=%-8d (ns)\n",
				p, h.Count, p50, p90, p99, p999)
		}
		for _, c := range obs.Counters() {
			if v := snap.Counter(c); v != 0 {
				fmt.Printf("%-16s %d\n", c, v)
			}
		}
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}
