// Command hinfs-load drives a hinfs-server with many concurrent
// simulated users across tenants and reports per-tenant throughput,
// latency percentiles, and namespace-isolation violations.
//
//	hinfs-load -addr 127.0.0.1:7070 -tenants alpha:1:data,beta:1:data \
//	    -clients 64 -duration 10s
//
//	hinfs-load -selfserve -tenants gold:4:data,bronze:1:mixed -clients 512
//
//	hinfs-load -selfserve -batch 32 -tenants alpha:1:data,beta:1:data
//
// Each tenant spec is name:weight:profile. Profiles: "data" (16 KiB
// reads/writes with an fsync every fourth op), "meta" (create/stat/
// unlink churn), "mixed" (alternating cycles of both). With -batch N > 1,
// data-profile clients submit through the pipelined Batch API with up
// to N ops in flight per connection (meta and mixed stay synchronous),
// and the report gains a realized-pipeline-depth column. In -addr mode
// the tenants must already exist on the server and the weight field is
// informational; with -selfserve an in-process server is constructed
// from the specs, so one process can exercise the full stack (used by
// CI smoke). Every client periodically probes a sibling tenant's
// namespace; any probe that does not come back vfs.ErrInvalid counts as
// an isolation violation. The exit status is nonzero if any client
// errored or any violation occurred.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/harness"
	"hinfs/internal/obs"
	"hinfs/internal/server"
	"hinfs/internal/vfs"
)

type tenantSpec struct {
	name    string
	weight  int
	profile string
}

func parseTenants(s string) ([]tenantSpec, error) {
	var out []tenantSpec
	seen := map[string]bool{}
	for _, spec := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(spec), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("want name:weight:profile, got %q", spec)
		}
		weight, err := strconv.Atoi(parts[1])
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("bad weight in %q", spec)
		}
		switch parts[2] {
		case "data", "meta", "mixed":
		default:
			return nil, fmt.Errorf("unknown profile %q (want data, meta or mixed)", parts[2])
		}
		if parts[0] == "" || seen[parts[0]] {
			return nil, fmt.Errorf("empty or duplicate tenant name in %q", spec)
		}
		seen[parts[0]] = true
		out = append(out, tenantSpec{name: parts[0], weight: weight, profile: parts[2]})
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("need at least two tenants for isolation probes")
	}
	return out, nil
}

// tenantRun accumulates one tenant's client-side results. depthSum
// holds realized pipeline depth in thousandths (per batched client, at
// exit) so the report's depth column is a mean over clients.
type tenantRun struct {
	ops        atomic.Int64
	errs       atomic.Int64
	violations atomic.Int64
	depthSum   atomic.Int64
	depthN     atomic.Int64
	lat        obs.Hist
}

func main() { os.Exit(run()) }

func run() int {
	var (
		addr      = flag.String("addr", "", "server address to connect to")
		selfserve = flag.Bool("selfserve", false, "run an in-process server instead of connecting")
		system    = flag.String("system", "hinfs", "backing system for -selfserve")
		device    = flag.Int64("device", 256, "emulated device size for -selfserve (MiB)")
		workers   = flag.Int("workers", 2, "scheduler workers for -selfserve")
		tenantStr = flag.String("tenants", "alpha:1:data,beta:1:data", "tenant specs name:weight:profile, comma-separated")
		clients   = flag.Int("clients", 64, "concurrent clients per tenant")
		duration  = flag.Duration("duration", 5*time.Second, "load window")
		iosize    = flag.Int("iosize", 16<<10, "data op size (bytes)")
		batch     = flag.Int("batch", 1, "pipeline window for data-profile clients (1 = synchronous)")
		slowOp    = flag.Duration("slow-op", 0, "log a JSON line to stderr for every round trip at or over this latency (0 = off); trace IDs match the server's slow-op log")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "hinfs-load:", err)
		return 1
	}
	tenants, err := parseTenants(*tenantStr)
	if err != nil {
		return fail(err)
	}
	if *iosize <= 0 || *iosize > server.MaxIO {
		return fail(fmt.Errorf("iosize must be in (0, %d]", server.MaxIO))
	}
	if *batch < 1 || *batch > server.DefaultBatchWindow {
		return fail(fmt.Errorf("batch must be in [1, %d]", server.DefaultBatchWindow))
	}
	if (*addr == "") == !*selfserve {
		return fail(fmt.Errorf("exactly one of -addr or -selfserve is required"))
	}

	target := *addr
	if *selfserve {
		inst, err := harness.NewInstance(harness.System(*system), harness.Config{DeviceSize: *device << 20})
		if err != nil {
			return fail(err)
		}
		defer inst.Close()
		srvTenants := make(map[string]server.TenantConfig, len(tenants))
		for _, tn := range tenants {
			srvTenants[tn.name] = server.TenantConfig{Root: "/tenants/" + tn.name, Weight: tn.weight}
		}
		srv, err := server.New(server.Config{
			FS: inst.FS, Tenants: srvTenants, Workers: *workers,
			// Batched dispatch coalesces each batch's trailing persist
			// fences into one ordering point (see nvmm.FenceScope).
			BatchFences: func() server.PersistScope { return inst.Dev.EnterFenceScope() },
		})
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		go srv.Serve(ln)
		target = ln.Addr().String()
		fmt.Printf("hinfs-load: self-serving %s on %s\n", *system, target)
	}

	// One shared client-side slow-op log: every client stamps its records
	// with side "client" and the wire trace ID, so a slow round trip here
	// joins to the server's record for the same request.
	var slowLog *obs.SlowLog
	if *slowOp > 0 {
		slowLog = obs.NewSlowLog(os.Stderr, *slowOp)
	}

	runs := make(map[string]*tenantRun, len(tenants))
	for _, tn := range tenants {
		runs[tn.name] = &tenantRun{}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ti, tn := range tenants {
		other := tenants[(ti+1)%len(tenants)].name
		for i := 0; i < *clients; i++ {
			wg.Add(1)
			go func(tn tenantSpec, i int) {
				defer wg.Done()
				client(target, tn, other, i, *iosize, *batch, runs[tn.name], slowLog, stop)
			}(tn, i)
		}
	}
	fmt.Printf("hinfs-load: %d tenants x %d clients against %s for %v\n",
		len(tenants), *clients, target, *duration)
	start := time.Now()
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	var total, badness int64
	for _, tn := range tenants {
		total += runs[tn.name].ops.Load()
	}
	fmt.Println("tenant        weight  profile  ops      ops/s    share  p50(us)   p99(us)   p999(us)  depth  errors  violations")
	for _, tn := range tenants {
		r := runs[tn.name]
		ops := r.ops.Load()
		share := 0.0
		if total > 0 {
			share = 100 * float64(ops) / float64(total)
		}
		p50, _, p99, p999 := r.lat.Snapshot().Percentiles()
		depth := "-"
		if n := r.depthN.Load(); n > 0 {
			depth = fmt.Sprintf("%.1f", float64(r.depthSum.Load())/float64(n)/1000)
		}
		fmt.Printf("%-12s  %6d  %-7s  %-7d  %-7.0f  %4.1f%%  %-8.1f  %-8.1f  %-8.1f  %5s  %6d  %10d\n",
			tn.name, tn.weight, tn.profile, ops, float64(ops)/elapsed.Seconds(), share,
			float64(p50)/1e3, float64(p99)/1e3, float64(p999)/1e3, depth,
			r.errs.Load(), r.violations.Load())
		badness += r.errs.Load() + r.violations.Load()
	}
	if badness > 0 {
		fmt.Fprintf(os.Stderr, "hinfs-load: FAILED: %d client errors / isolation violations\n", badness)
		return 1
	}
	fmt.Println("hinfs-load: ok — zero client errors, zero isolation violations")
	return 0
}

// client simulates one user until stop closes: synchronous round trips
// by default, the pipelined Batch path for data-profile clients when
// batch > 1.
func client(addr string, tn tenantSpec, other string, id, iosize, batch int, run *tenantRun, slow *obs.SlowLog, stop <-chan struct{}) {
	c, err := server.Dial(addr, tn.name)
	if err != nil {
		run.errs.Add(1)
		return
	}
	defer c.Unmount()
	c.SetSlowOpLog(slow)
	f, err := c.Create(fmt.Sprintf("/u%d", id))
	if err != nil {
		run.errs.Add(1)
		return
	}
	defer f.Close()
	if batch > 1 && tn.profile == "data" {
		batchedClient(c, f, other, batch, iosize, run, stop)
		return
	}
	buf := make([]byte, iosize)
	for j := 0; ; j++ {
		select {
		case <-stop:
			return
		default:
		}
		start := time.Now()
		var err error
		meta := tn.profile == "meta" || (tn.profile == "mixed" && j%16 >= 8)
		if meta {
			err = metaOp(c, id, j)
		} else {
			err = dataOp(f, buf, j)
		}
		if err != nil {
			// A shutdown race at window close is not a client failure.
			if err != vfs.ErrUnmounted {
				run.errs.Add(1)
			}
			return
		}
		run.lat.ObserveSince(start)
		run.ops.Add(1)
		if j%64 == 63 {
			// Escape probe: a sibling tenant's namespace must be
			// structurally unreachable.
			if _, err := c.Stat("/../" + other + "/u0"); err != vfs.ErrInvalid {
				run.violations.Add(1)
			}
		}
	}
}

// batchedClient drives the data profile through the pipelined Batch
// API: each round queues 32 ops in dataOp's write/read/fsync cadence
// with up to `window` in flight on the connection, then reaps them
// together. Per-op latency lands in the tenant histogram via the
// batch's latency hook; realized pipeline depth is recorded at exit.
func batchedClient(c *server.Client, f vfs.File, other string, window, iosize int, run *tenantRun, stop <-chan struct{}) {
	b := c.NewBatch()
	b.SetWindow(window)
	b.SetLatency(&run.lat)
	wbuf := make([]byte, iosize)
	// A reply may land any time before Wait returns, so in-flight reads
	// cannot share a destination buffer.
	rbufs := make([][]byte, 32)
	for k := range rbufs {
		rbufs[k] = make([]byte, iosize)
	}
	for j, round := 0, 0; ; round++ {
		select {
		case <-stop:
			run.depthSum.Add(int64(b.AchievedDepth() * 1000))
			run.depthN.Add(1)
			return
		default:
		}
		for k := 0; k < 32; k++ {
			switch {
			case j%4 == 3:
				b.Fsync(f)
			case j%2 == 0:
				b.WriteAt(f, wbuf, int64(j%32)*int64(iosize))
			default:
				b.ReadAt(f, rbufs[k], int64((j-1)%32)*int64(iosize))
			}
			j++
		}
		if err := b.Wait(); err != nil {
			// A shutdown race at window close is not a client failure.
			if err != vfs.ErrUnmounted {
				run.errs.Add(1)
			}
			return
		}
		for _, o := range b.Ops() {
			// io.EOF is still contractual on a fresh file's first lap.
			if o.Err != nil && o.Err != io.EOF {
				run.errs.Add(1)
				return
			}
		}
		run.ops.Add(int64(b.Len()))
		b.Reset()
		if round%8 == 7 {
			// Escape probe, same contract as the synchronous path.
			if _, err := c.Stat("/../" + other + "/u0"); err != vfs.ErrInvalid {
				run.violations.Add(1)
			}
		}
	}
}

// dataOp issues the data-profile op for step j: write, read, write,
// fsync, repeating. Reads target the slot the previous step wrote, so
// they return data rather than EOF.
func dataOp(f vfs.File, buf []byte, j int) error {
	switch {
	case j%4 == 3:
		return f.Fsync()
	case j%2 == 0:
		_, err := f.WriteAt(buf, int64(j%32)*int64(len(buf)))
		return err
	default:
		off := int64((j-1)%32) * int64(len(buf))
		// io.EOF is still contractual on a fresh file's first lap.
		if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
			return err
		}
		return nil
	}
}

// metaOp issues the metadata-profile op for step j: create, stat,
// unlink, repeating over a per-client path.
func metaOp(c *server.Client, id, j int) error {
	path := fmt.Sprintf("/m%d-%d", id, j/3%8)
	switch j % 3 {
	case 0:
		f, err := c.Create(path)
		if err != nil {
			return err
		}
		return f.Close()
	case 1:
		_, err := c.Stat(path)
		if err == vfs.ErrNotExist {
			// A sibling step may have raced the unlink; absence is fine.
			return nil
		}
		return err
	default:
		if err := c.Unlink(path); err != nil && err != vfs.ErrNotExist {
			return err
		}
		return nil
	}
}
