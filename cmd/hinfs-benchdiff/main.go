// Command hinfs-benchdiff compares hinfs-bench JSON documents and fails
// on performance regressions.
//
// Usage:
//
//	hinfs-bench -fig all -json base.json          # record a baseline
//	hinfs-bench -fig all -json new.json           # record a candidate
//	hinfs-benchdiff base.json new.json            # compare (10% tolerance)
//	hinfs-benchdiff -tol 0.25 base.json new.json  # noisy-runner tolerance
//	hinfs-benchdiff -figtol 7=0.5,latency=0.3 base.json new.json
//	hinfs-benchdiff base.json run1.json run2.json run3.json  # min-of-N
//
// With several candidate documents, each series is judged by the repeat
// closest to the baseline (min-of-N): transient noise in one run does not
// fail the gate. Exit status: 0 all series within tolerance, 1 regression
// or missing series, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hinfs/internal/harness"
)

func main() {
	var (
		tol    = flag.Float64("tol", 0.10, "default relative tolerance per series")
		figtol = flag.String("figtol", "", "per-figure or per-series overrides: 'fig=tol' or 'fig:series=tol', comma-separated")
		out    = flag.String("o", "-", "write the markdown report here ('-' = stdout)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hinfs-benchdiff [flags] baseline.json current.json [repeat.json ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *tol <= 0 {
		fmt.Fprintf(os.Stderr, "hinfs-benchdiff: invalid -tol %v: must be > 0\n", *tol)
		os.Exit(2)
	}
	opts := harness.DiffOptions{
		Tolerance: *tol,
		PerFigure: map[string]float64{},
		PerSeries: map[string]float64{},
	}
	if *figtol != "" {
		for _, ent := range strings.Split(*figtol, ",") {
			key, val, ok := strings.Cut(ent, "=")
			t, err := strconv.ParseFloat(val, 64)
			if !ok || err != nil || t <= 0 || key == "" {
				fmt.Fprintf(os.Stderr, "hinfs-benchdiff: invalid -figtol entry %q (want 'fig=0.5' or 'fig:series=0.5')\n", ent)
				os.Exit(2)
			}
			if strings.Contains(key, ":") {
				opts.PerSeries[key] = t
			} else {
				opts.PerFigure[key] = t
			}
		}
	}

	base, err := harness.ReadBenchDoc(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hinfs-benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	var runs []*harness.BenchDoc
	for _, path := range flag.Args()[1:] {
		d, err := harness.ReadBenchDoc(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hinfs-benchdiff: %v\n", err)
			os.Exit(2)
		}
		runs = append(runs, d)
	}

	rep := harness.Diff(base, runs, opts)
	md := rep.Markdown()
	if *out == "-" {
		fmt.Print(md)
	} else if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "hinfs-benchdiff: %v\n", err)
		os.Exit(2)
	}
	if rep.Regressed() {
		os.Exit(1)
	}
}
