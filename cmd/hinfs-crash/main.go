// Command hinfs-crash runs the systematic crash-point explorer: it
// records a workload's persist-event schedule, re-executes it once per
// crash point with the nvmm fault plane armed, materializes several
// torn-cacheline images per point (seed 0 always drops every pending
// line), remounts each through journal recovery, and verifies both the
// metadata checker and the application-level oracle — plus, with the
// flight recorder on (default), the flight-forensics invariants: the
// recovered ring's record suffix must match the recorded op schedule.
//
//	$ go run ./cmd/hinfs-crash -workload varmail -points 500 -perms 3
//	$ go run ./cmd/hinfs-crash -workload traffic -points 20
//	$ go run ./cmd/hinfs-crash -selftest
//	$ go run ./cmd/hinfs-crash -forensics -from 731 -to 731
//
// Every violation prints a repro line whose -from/-to pin the crash
// window to the single failing persist event — paste it back to re-run
// just that case (or add -forensics to dump the recovered flight ring).
//
// Exit status: 0 = exploration clean (or self-test passed), 1 =
// consistency violations found (or self-test failed to find the seeded
// bug), 2 = the exploration itself failed.
package main

import (
	"flag"
	"fmt"
	"os"

	"hinfs/internal/crashtest"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		wl        = flag.String("workload", "varmail", "personality: varmail, append, batchfence or traffic (chaos under multi-tenant server load)")
		ops       = flag.Int("ops", 120, "workload operations per run (deterministic workloads)")
		points    = flag.Int("points", 48, "crash points to explore")
		perms     = flag.Int("perms", 3, "torn-cacheline permutations per point (first is always drop-all)")
		seed      = flag.Uint64("seed", 1, "exploration seed (same seed, same report)")
		from      = flag.Int64("from", 0, "restrict crash window to persist events >= this (0 = start of workload)")
		to        = flag.Int64("to", 0, "restrict crash window to persist events <= this (0 = end of run)")
		device    = flag.Int64("device", 24, "device size (MiB)")
		buffer    = flag.Int("buffer", 512, "DRAM buffer (4 KiB blocks)")
		clients   = flag.Int("clients", 2, "clients per tenant (traffic workload)")
		flight    = flag.Bool("flight", true, "record a flight ring in the image and verify the flight-* invariants")
		forensics = flag.Bool("forensics", false, "dump the recovered flight ring as JSON lines (violating cases; with a clean report, the end-of-run image)")
		verbose   = flag.Bool("v", false, "log every crash case to stderr")
		selftest  = flag.Bool("selftest", false, "verify the explorer detects the deliberately seeded §4.1 ordering bug")
	)
	flag.Parse()

	if *wl == "traffic" {
		return runTraffic(*points, *perms, *seed, *clients, *device<<20, *buffer, *verbose)
	}

	cfg := crashtest.Config{
		Workload:   *wl,
		Ops:        *ops,
		Points:     *points,
		Perms:      *perms,
		Seed:       *seed,
		FirstEvent: *from,
		LastEvent:  *to,
		DeviceSize: *device << 20,

		BufferBlocks: *buffer,
		Flight:       *flight,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	if *selftest {
		return runSelftest(cfg)
	}
	rep, err := crashtest.Explore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinfs-crash:", err)
		return 2
	}
	fmt.Println(rep.Summary())
	code := printViolations(rep.Violations, rep.Suppressed, reproPrefix(cfg))
	if *forensics {
		if ferr := dumpForensics(cfg, rep); ferr != nil {
			fmt.Fprintln(os.Stderr, "hinfs-crash: forensics:", ferr)
			if code == 0 {
				code = 2
			}
		}
	}
	return code
}

// reproPrefix renders the invocation that reproduces a violation once
// -from/-to pin the event; printViolations appends those per violation.
func reproPrefix(cfg crashtest.Config) string {
	s := fmt.Sprintf("hinfs-crash -workload %s -ops %d -seed %d -perms %d",
		cfg.Workload, cfg.Ops, cfg.Seed, cfg.Perms)
	if !cfg.Flight {
		s += " -flight=false"
	}
	return s
}

// dumpForensics writes the recovered flight ring for up to three
// distinct violating cases (or, with a clean report, for a drop-all
// crash at the last persist event) as JSON lines on stdout.
func dumpForensics(cfg crashtest.Config, rep *crashtest.Report) error {
	type c struct {
		ev   int64
		seed uint64
	}
	var cases []c
	seen := map[c]bool{}
	for _, v := range rep.Violations {
		k := c{v.Event, v.Seed}
		if v.Event > 0 && !seen[k] {
			seen[k] = true
			cases = append(cases, k)
		}
		if len(cases) == 3 {
			break
		}
	}
	if len(cases) == 0 {
		cases = append(cases, c{rep.TotalEvents, 0})
	}
	for _, k := range cases {
		fmt.Printf("forensics: flight ring recovered from crash at event %d, torn seed %#x\n", k.ev, k.seed)
		if err := crashtest.Forensics(cfg, k.ev, k.seed, os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func runTraffic(points, perms int, seed uint64, clients int, device int64, buffer int, verbose bool) int {
	cfg := crashtest.TrafficConfig{
		Points:           points,
		Perms:            perms,
		Seed:             seed,
		ClientsPerTenant: clients,
		DeviceSize:       device,
		BufferBlocks:     buffer,
	}
	if verbose {
		cfg.Log = os.Stderr
	}
	rep, err := crashtest.ExploreTraffic(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinfs-crash:", err)
		return 2
	}
	fmt.Println(rep.Summary())
	// Traffic runs are not deterministic; the violation lines identify
	// the case but there is no replayable -from/-to repro.
	return printViolations(rep.Violations, rep.Suppressed, "")
}

// runSelftest proves the explorer has teeth: stock HiNFS must survive
// the exploration clean, and the same exploration against the
// deliberately broken §4.1 ordering (commit records written before the
// buffered data persists) must report at least one violation.
func runSelftest(cfg crashtest.Config) int {
	if cfg.Workload == "varmail" {
		// The bug needs lazy-write windows; varmail fsyncs everything.
		cfg.Workload = "append"
	}
	fmt.Printf("selftest 1/2: stock HiNFS, workload %s\n", cfg.Workload)
	rep, err := crashtest.Explore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinfs-crash: selftest:", err)
		return 2
	}
	fmt.Println("  " + rep.Summary())
	if code := printViolations(rep.Violations, rep.Suppressed, reproPrefix(cfg)); code != 0 {
		fmt.Fprintln(os.Stderr, "hinfs-crash: selftest: stock HiNFS must explore clean")
		return code
	}
	fmt.Println("selftest 2/2: seeded ordering bug (UnsafeSkipOrderedCommit)")
	cfg.UnsafeSkipOrderedCommit = true
	rep, err = crashtest.Explore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinfs-crash: selftest:", err)
		return 2
	}
	fmt.Println("  " + rep.Summary())
	if len(rep.Violations) == 0 {
		fmt.Fprintln(os.Stderr, "hinfs-crash: selftest: seeded ordering bug went UNDETECTED")
		return 1
	}
	fmt.Printf("  detected, first repro: %s\n", rep.Violations[0])
	fmt.Println("selftest passed")
	return 0
}

func printViolations(violations []crashtest.Violation, suppressed int, repro string) int {
	const show = 20
	for i, v := range violations {
		if i == show {
			fmt.Printf("... and %d more\n", len(violations)-show+suppressed)
			break
		}
		fmt.Println("VIOLATION", v)
		if repro != "" && v.Event > 0 {
			fmt.Printf("  repro: %s -from %d -to %d\n", repro, v.Event, v.Event)
		}
	}
	if len(violations) > 0 {
		return 1
	}
	return 0
}
