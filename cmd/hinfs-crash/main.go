// Command hinfs-crash runs the systematic crash-point explorer: it
// records a workload's persist-event schedule, re-executes it once per
// crash point with the nvmm fault plane armed, materializes several
// torn-cacheline images per point (seed 0 always drops every pending
// line), remounts each through journal recovery, and verifies both the
// metadata checker and the application-level oracle.
//
//	$ go run ./cmd/hinfs-crash -workload varmail -points 500 -perms 3
//	$ go run ./cmd/hinfs-crash -selftest
//
// Exit status: 0 = exploration clean (or self-test passed), 1 =
// consistency violations found (or self-test failed to find the seeded
// bug), 2 = the exploration itself failed.
package main

import (
	"flag"
	"fmt"
	"os"

	"hinfs/internal/crashtest"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		wl       = flag.String("workload", "varmail", "personality: varmail, append or batchfence")
		ops      = flag.Int("ops", 120, "workload operations per run")
		points   = flag.Int("points", 48, "crash points to explore")
		perms    = flag.Int("perms", 3, "torn-cacheline permutations per point (first is always drop-all)")
		seed     = flag.Uint64("seed", 1, "exploration seed (same seed, same report)")
		from     = flag.Int64("from", 0, "restrict crash window to persist events >= this (0 = start of workload)")
		to       = flag.Int64("to", 0, "restrict crash window to persist events <= this (0 = end of run)")
		device   = flag.Int64("device", 24, "device size (MiB)")
		buffer   = flag.Int("buffer", 512, "DRAM buffer (4 KiB blocks)")
		verbose  = flag.Bool("v", false, "log every crash case to stderr")
		selftest = flag.Bool("selftest", false, "verify the explorer detects the deliberately seeded §4.1 ordering bug")
	)
	flag.Parse()

	cfg := crashtest.Config{
		Workload:   *wl,
		Ops:        *ops,
		Points:     *points,
		Perms:      *perms,
		Seed:       *seed,
		FirstEvent: *from,
		LastEvent:  *to,
		DeviceSize: *device << 20,

		BufferBlocks: *buffer,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	if *selftest {
		return runSelftest(cfg)
	}
	rep, err := crashtest.Explore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinfs-crash:", err)
		return 2
	}
	fmt.Println(rep.Summary())
	return printViolations(rep)
}

// runSelftest proves the explorer has teeth: stock HiNFS must survive
// the exploration clean, and the same exploration against the
// deliberately broken §4.1 ordering (commit records written before the
// buffered data persists) must report at least one violation.
func runSelftest(cfg crashtest.Config) int {
	if cfg.Workload == "varmail" {
		// The bug needs lazy-write windows; varmail fsyncs everything.
		cfg.Workload = "append"
	}
	fmt.Printf("selftest 1/2: stock HiNFS, workload %s\n", cfg.Workload)
	rep, err := crashtest.Explore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinfs-crash: selftest:", err)
		return 2
	}
	fmt.Println("  " + rep.Summary())
	if code := printViolations(rep); code != 0 {
		fmt.Fprintln(os.Stderr, "hinfs-crash: selftest: stock HiNFS must explore clean")
		return code
	}
	fmt.Println("selftest 2/2: seeded ordering bug (UnsafeSkipOrderedCommit)")
	cfg.UnsafeSkipOrderedCommit = true
	rep, err = crashtest.Explore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hinfs-crash: selftest:", err)
		return 2
	}
	fmt.Println("  " + rep.Summary())
	if len(rep.Violations) == 0 {
		fmt.Fprintln(os.Stderr, "hinfs-crash: selftest: seeded ordering bug went UNDETECTED")
		return 1
	}
	fmt.Printf("  detected, first repro: %s\n", rep.Violations[0])
	fmt.Println("selftest passed")
	return 0
}

func printViolations(rep *crashtest.Report) int {
	const show = 20
	for i, v := range rep.Violations {
		if i == show {
			fmt.Printf("... and %d more\n", len(rep.Violations)-show+rep.Suppressed)
			break
		}
		fmt.Println("VIOLATION", v)
	}
	if len(rep.Violations) > 0 {
		return 1
	}
	return 0
}
